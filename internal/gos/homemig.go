package gos

import (
	"sort"

	"jessica2/internal/heap"
	"jessica2/internal/network"
	"jessica2/internal/tcm"
)

// Object home migration is the other locality lever the paper's §II
// taxonomy names (thread-object affinity "can be improved either by thread
// migration or object home migration") and §VI flags as needing the "home
// effect" in correlation input. This file implements the mechanism and a
// profile-driven advisor.

// HomeMove is one recommended or executed home migration.
type HomeMove struct {
	Obj      heap.ObjectID
	From, To int
	// Bytes is the object payload moved.
	Bytes int
}

// MigrateHome re-homes an object to newHome: the object's latest contents
// transfer from the current home, the new home's replica becomes the
// authoritative copy, and the old home's replica downgrades to an ordinary
// cache copy at the current version. Remote caches are unaffected — their
// version checks keep working because versions are per-object, not
// per-home. Returns the executed move (zero Move if already homed there).
func (k *Kernel) MigrateHome(o *heap.Object, newHome int) HomeMove {
	if newHome < 0 || newHome >= len(k.nodes) {
		panic("gos: bad home node")
	}
	if o.Home == newHome {
		return HomeMove{}
	}
	mv := HomeMove{Obj: o.ID, From: o.Home, To: newHome, Bytes: o.Bytes()}
	// Ship the home copy (cost-accounted; version table is global truth).
	k.Net.Send(network.NodeID(o.Home), network.NodeID(newHome),
		network.CatGOSData, o.Bytes(), &protoMsg{kind: msgDiff})
	// Old home's replica becomes a plain cache copy at the current version.
	old := k.nodes[o.Home].copyOf(o)
	old.version = k.version(o.ID)
	// New home's replica is authoritative.
	o.Home = newHome
	nh := k.nodes[newHome].copyOf(o)
	nh.valid = true
	nh.version = k.version(o.ID)
	nh.checkedEpoch = k.nodes[newHome].epoch
	k.stats.HomeMigrations++
	return mv
}

// AdviseHomes recommends home migrations from a correlation summary: an
// object whose accessor threads all execute on one node, while its home is
// elsewhere, should be homed with them (every access currently pays a
// remote fault after each update). assignment maps thread id to node.
// minBytes filters noise. Results are sorted by object id for determinism.
func (k *Kernel) AdviseHomes(s *tcm.Summary, assignment []int, minBytes int) []HomeMove {
	var out []HomeMove
	for _, os := range s.Objs {
		o := k.Reg.Object(heap.ObjectID(os.Key))
		if o == nil || o.Bytes() < minBytes || len(os.Threads) == 0 {
			continue
		}
		node := -1
		unanimous := true
		for _, th := range os.Threads {
			if int(th) >= len(assignment) {
				unanimous = false
				break
			}
			d := assignment[th]
			if node == -1 {
				node = d
			} else if node != d {
				unanimous = false
				break
			}
		}
		if !unanimous || node == -1 || node == o.Home {
			continue
		}
		out = append(out, HomeMove{Obj: o.ID, From: o.Home, To: node, Bytes: o.Bytes()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Obj < out[j].Obj })
	return out
}

// ApplyHomeMoves executes a batch of advised moves, returning the total
// bytes shipped.
func (k *Kernel) ApplyHomeMoves(moves []HomeMove) int64 {
	var bytes int64
	for _, mv := range moves {
		o := k.Reg.Object(mv.Obj)
		if o == nil {
			continue
		}
		done := k.MigrateHome(o, mv.To)
		bytes += int64(done.Bytes)
	}
	return bytes
}
