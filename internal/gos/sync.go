package gos

import (
	"fmt"
	"sort"

	"jessica2/internal/network"
)

// lockState lives on the lock's manager node — statically id % nodes, but
// the manager fails over to the master while that node is declared dead
// (see failoverLocks), so `home` is the current manager, not the hash.
type lockState struct {
	home  int
	held  bool
	queue []lockWaiter
	// Failover bookkeeping. gen fences stale in-flight releases: a release
	// lost toward a dead manager is accounted for by the failover rebuild,
	// and its eventual delivery (the scenario layer defers such messages to
	// the node's restart) must not unlock the next holder's critical
	// section. holder/granting/holderDone are the survivor-side truth the
	// rebuild consults: who was last granted, whether that grant is still
	// on the wire, and whether the holder has already sent its release.
	gen        int64
	holder     *Thread
	granting   bool
	grantee    lockWaiter
	holderDone bool
	// inflight is the set of lock requests sent but not yet received by
	// the manager — the survivor-side "I asked and heard nothing" truth.
	// Failover resends them to the new manager under the bumped
	// generation; the adrift originals are fenced on arrival.
	inflight []lockWaiter
}

type lockWaiter struct {
	node network.NodeID
	tok  int64
}

func (k *Kernel) lockHome(id int) int { return id % len(k.nodes) }

func (k *Kernel) lock(id int) *lockState {
	ls := k.locks[id]
	if ls == nil {
		home := k.lockHome(id)
		if k.fd != nil && home > 0 && k.fd.dead[home] {
			home = 0 // manager is down: the master adopts the lock
		}
		ls = &lockState{home: home}
		k.locks[id] = ls
	}
	return ls
}

// LockAvailable reports whether the distributed lock is currently free at
// its manager (not held and not mid-grant). The serving layer uses it to
// tell a stripe that is merely busy from one whose lock is wedged behind a
// holder stranded on a crashed node.
func (k *Kernel) LockAvailable(id int) bool {
	ls := k.locks[id]
	return ls == nil || !ls.held
}

// failoverLocks re-homes every lock managed by the dead node onto the
// master and rebuilds held-state from survivor-side truth: a lock whose
// holder already sent its release (now lost in flight toward the dead
// manager) is freed — granted to the next queued waiter — and its
// generation bumped so the stale release is ignored when the dead node's
// deferred traffic finally drains. Iteration is in lock-id order for
// determinism.
func (k *Kernel) failoverLocks(dead int) {
	if dead == 0 {
		return
	}
	ids := make([]int, 0, len(k.locks))
	for id, ls := range k.locks {
		if ls.home == dead {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		ls := k.locks[id]
		ls.home = 0
		k.fstats.LockFailovers++
		releaseLost := ls.held && !ls.granting && ls.holderDone
		grantAdrift := ls.granting // issued by the dead manager, undelivered
		if !releaseLost && !grantAdrift && len(ls.inflight) == 0 {
			continue // nothing adrift: a plain re-home suffices
		}
		// Traffic is adrift toward the dead manager; supersede it.
		ls.gen++
		if releaseLost {
			k.reclaimLock(id, ls)
		} else if grantAdrift {
			k.grantLock(id, ls, ls.grantee) // re-issue from the new manager
		}
		k.resendInflight(id, ls)
	}
}

// resendInflight re-issues every adrift lock request under the lock's
// current generation (the requester's runtime notices the manager change;
// the blocked thread itself stays blocked until its grant). Every
// generation bump must be followed by this, or the fence orphans the
// adrift requesters. A resend from a node that is itself down travels
// under that node's own fate — it arrives when the node does.
func (k *Kernel) resendInflight(id int, ls *lockState) {
	for _, w := range ls.inflight {
		k.Net.Send(w.node, network.NodeID(ls.home), network.CatControl, 24,
			&protoMsg{kind: msgLockReq, lock: id, tok: w.tok, gen: ls.gen})
	}
}

// reclaimLock hands a released-but-wedged lock to its next waiter (or
// frees it). The caller has already bumped the generation so the adrift
// release is fenced on arrival.
func (k *Kernel) reclaimLock(id int, ls *lockState) {
	ls.holder = nil
	ls.holderDone = false
	if len(ls.queue) > 0 {
		next := ls.queue[0]
		copy(ls.queue, ls.queue[1:])
		ls.queue = ls.queue[:len(ls.queue)-1]
		k.grantLock(id, ls, next)
	} else {
		ls.held = false
	}
}

// reclaimDeadHolderLocks frees every lock whose last holder already sent
// its release from a node that has since been declared dead — the release
// is adrift until that node restarts, and without reclamation the lock
// (and every request serialized behind it) stays wedged for the whole
// outage. Runs from the failure detector's sweep; lock-id order for
// determinism.
func (k *Kernel) reclaimDeadHolderLocks() {
	ids := make([]int, 0, len(k.locks))
	for id, ls := range k.locks {
		if ls.held && !ls.granting && ls.holderDone &&
			ls.holder != nil && k.fd.dead[ls.holder.node.id] {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		ls := k.locks[id]
		ls.gen++
		k.fstats.LockReclaims++
		k.reclaimLock(id, ls)
		k.resendInflight(id, ls)
	}
}

// restoreLocks returns management of the revived node's locks to it.
// In-flight traffic is unaffected: lock state is kernel-global, and the
// manager only determines message endpoints from here on.
func (k *Kernel) restoreLocks(revived int) {
	ids := make([]int, 0, len(k.locks))
	for id, ls := range k.locks {
		if ls.home != k.lockHome(id) && k.lockHome(id) == revived {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		k.locks[id].home = revived
	}
}

// Acquire obtains the distributed lock, applying remote write notices on
// grant (the node's sync epoch advances, so cached copies revalidate
// lazily). OALs piggyback on the request when the manager is the master.
func (t *Thread) Acquire(lockID int) {
	t.flushCPU()
	home := t.k.lock(lockID).home
	tok := t.node.newToken(t)
	parts := []network.Part{{Cat: network.CatControl, Bytes: 24}}
	var pl *oalPayload
	if home == 0 {
		if pl = t.node.drainOAL(t); pl != nil {
			parts = append(parts, network.Part{Cat: network.CatOAL, Bytes: pl.wire})
		}
	}
	ls := t.k.lock(lockID)
	ls.inflight = append(ls.inflight, lockWaiter{node: network.NodeID(t.node.id), tok: tok})
	pm := &protoMsg{kind: msgLockReq, lock: lockID, tok: tok, gen: ls.gen}
	if pl != nil {
		pm.oal, pm.sum = pl.batch, pl.sum
	}
	t.k.Net.SendParts(network.NodeID(t.node.id), network.NodeID(home), parts, pm)
	t.proc.Block(fmt.Sprintf("lock%d", lockID))
	// The grant has landed: it is no longer on the wire.
	t.k.lock(lockID).granting = false
	t.node.advanceEpoch()
	t.k.stats.LockAcquires++
}

// Release closes the current interval (flushing diffs and the OAL record)
// and returns the lock to its manager.
func (t *Thread) Release(lockID int) {
	t.closeInterval()
	t.flushCPU()
	ls := t.k.lock(lockID)
	ls.holderDone = true
	home := ls.home
	parts := []network.Part{{Cat: network.CatControl, Bytes: 16}}
	var pl *oalPayload
	if home == 0 {
		if pl = t.node.drainOAL(t); pl != nil {
			parts = append(parts, network.Part{Cat: network.CatOAL, Bytes: pl.wire})
		}
	}
	pm := &protoMsg{kind: msgLockRelease, lock: lockID, gen: ls.gen}
	if pl != nil {
		pm.oal, pm.sum = pl.batch, pl.sum
	}
	t.k.Net.SendParts(network.NodeID(t.node.id), network.NodeID(home), parts, pm)
}

// lockRequest runs on the manager node (scheduler context). A request from
// a superseded generation was already resent to the failover manager by the
// time the adrift original drains; granting it twice would double-wake the
// requester, so it is dropped (its piggybacked payload still ingests — the
// data is real regardless of the lock protocol's fate).
func (k *Kernel) lockRequest(id int, from network.NodeID, tok int64, gen int64, pl *oalPayload) {
	k.master.IngestPayload(pl)
	ls := k.lock(id)
	for i, w := range ls.inflight {
		if w.node == from && w.tok == tok {
			ls.inflight = append(ls.inflight[:i], ls.inflight[i+1:]...)
			break
		}
	}
	if gen != ls.gen {
		return
	}
	k.Eng.After(k.Cfg.Costs.LockServiceCost, func() {
		if !ls.held {
			ls.held = true
			k.grantLock(id, ls, lockWaiter{node: from, tok: tok})
			return
		}
		ls.queue = append(ls.queue, lockWaiter{node: from, tok: tok})
	})
}

// lockRelease runs on the manager node. A release from a superseded
// generation was already accounted by a failover rebuild and is dropped.
func (k *Kernel) lockRelease(id int, gen int64) {
	ls := k.lock(id)
	if gen != ls.gen {
		return
	}
	k.Eng.After(k.Cfg.Costs.LockServiceCost, func() {
		if gen != ls.gen {
			return // rebuilt while the service cost elapsed
		}
		if len(ls.queue) == 0 {
			ls.held = false
			ls.holder = nil
			ls.holderDone = false
			return
		}
		next := ls.queue[0]
		copy(ls.queue, ls.queue[1:])
		ls.queue = ls.queue[:len(ls.queue)-1]
		k.grantLock(id, ls, next)
	})
}

// grantLock issues the grant from the lock's current manager. Grants are
// generation-stamped like releases: a grant adrift toward (or from) a dead
// node can be superseded by a failover re-issue, and only the current
// generation's copy may wake the grantee.
func (k *Kernel) grantLock(id int, ls *lockState, w lockWaiter) {
	ls.holder = k.nodes[int(w.node)].pending[w.tok]
	ls.granting = true
	ls.grantee = w
	ls.holderDone = false
	k.Net.Send(network.NodeID(ls.home), w.node, network.CatControl, 16,
		&protoMsg{kind: msgLockGrant, lock: id, tok: w.tok, gen: ls.gen})
}

// barrierState lives on the master node.
type barrierState struct {
	parties int
	arrived []lockWaiter
	// Episodes counts completed barrier crossings.
	Episodes int64
}

// Barrier joins a cluster-wide barrier with the given party count. The
// calling thread's interval closes, its OALs piggyback on the arrival
// message (the barrier manager is the master JVM), and on release the
// node's sync epoch advances.
func (t *Thread) Barrier(barrierID, parties int) {
	if parties <= 0 {
		panic("gos: barrier needs positive party count")
	}
	t.closeInterval()
	t.flushCPU()
	tok := t.node.newToken(t)
	parts := []network.Part{{Cat: network.CatControl, Bytes: 16}}
	pl := t.node.drainOAL(t)
	if pl != nil {
		parts = append(parts, network.Part{Cat: network.CatOAL, Bytes: pl.wire})
	}
	pm := &protoMsg{kind: msgBarrierArrive, bar: barrierID, tok: tok, parties: parties}
	if pl != nil {
		pm.oal, pm.sum = pl.batch, pl.sum
	}
	t.k.Net.SendParts(network.NodeID(t.node.id), 0, parts, pm)
	t.proc.Block(fmt.Sprintf("barrier%d", barrierID))
	t.node.advanceEpoch()
}

// barrierArrive runs on the master node. The party count travels in every
// arrival message; arrivals must agree on it.
func (k *Kernel) barrierArrive(id int, from network.NodeID, tok int64, pl *oalPayload, parties int) {
	k.master.IngestPayload(pl)
	bs := k.barriers[id]
	if bs == nil {
		bs = &barrierState{parties: parties}
		k.barriers[id] = bs
	}
	if bs.parties != parties {
		panic(fmt.Sprintf("gos: barrier %d party mismatch: %d vs %d", id, bs.parties, parties))
	}
	bs.arrived = append(bs.arrived, lockWaiter{node: from, tok: tok})
	if len(bs.arrived) >= bs.parties {
		waiters := bs.arrived
		bs.arrived = nil
		bs.Episodes++
		k.stats.Barriers++
		k.Eng.After(k.Cfg.Costs.BarrierServiceCost, func() {
			for _, w := range waiters {
				k.Net.Send(0, w.node, network.CatControl, 16,
					&protoMsg{kind: msgBarrierRelease, tok: w.tok})
			}
		})
	}
}
