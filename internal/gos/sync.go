package gos

import (
	"fmt"

	"jessica2/internal/network"
)

// lockState lives on the lock's manager node (id % nodes).
type lockState struct {
	home  int
	held  bool
	queue []lockWaiter
}

type lockWaiter struct {
	node network.NodeID
	tok  int64
}

func (k *Kernel) lockHome(id int) int { return id % len(k.nodes) }

func (k *Kernel) lock(id int) *lockState {
	ls := k.locks[id]
	if ls == nil {
		ls = &lockState{home: k.lockHome(id)}
		k.locks[id] = ls
	}
	return ls
}

// Acquire obtains the distributed lock, applying remote write notices on
// grant (the node's sync epoch advances, so cached copies revalidate
// lazily). OALs piggyback on the request when the manager is the master.
func (t *Thread) Acquire(lockID int) {
	t.flushCPU()
	home := t.k.lockHome(lockID)
	tok := t.node.newToken(t)
	parts := []network.Part{{Cat: network.CatControl, Bytes: 24}}
	var pl *oalPayload
	if home == 0 {
		if pl = t.node.drainOAL(t); pl != nil {
			parts = append(parts, network.Part{Cat: network.CatOAL, Bytes: pl.wire})
		}
	}
	pm := &protoMsg{kind: msgLockReq, lock: lockID, tok: tok}
	if pl != nil {
		pm.oal, pm.sum = pl.batch, pl.sum
	}
	t.k.Net.SendParts(network.NodeID(t.node.id), network.NodeID(home), parts, pm)
	t.proc.Block(fmt.Sprintf("lock%d", lockID))
	t.node.advanceEpoch()
	t.k.stats.LockAcquires++
}

// Release closes the current interval (flushing diffs and the OAL record)
// and returns the lock to its manager.
func (t *Thread) Release(lockID int) {
	t.closeInterval()
	t.flushCPU()
	home := t.k.lockHome(lockID)
	parts := []network.Part{{Cat: network.CatControl, Bytes: 16}}
	var pl *oalPayload
	if home == 0 {
		if pl = t.node.drainOAL(t); pl != nil {
			parts = append(parts, network.Part{Cat: network.CatOAL, Bytes: pl.wire})
		}
	}
	pm := &protoMsg{kind: msgLockRelease, lock: lockID}
	if pl != nil {
		pm.oal, pm.sum = pl.batch, pl.sum
	}
	t.k.Net.SendParts(network.NodeID(t.node.id), network.NodeID(home), parts, pm)
}

// lockRequest runs on the manager node (scheduler context).
func (k *Kernel) lockRequest(id int, from network.NodeID, tok int64, pl *oalPayload) {
	k.master.IngestPayload(pl)
	ls := k.lock(id)
	k.Eng.After(k.Cfg.Costs.LockServiceCost, func() {
		if !ls.held {
			ls.held = true
			k.grantLock(ls, lockWaiter{node: from, tok: tok})
			return
		}
		ls.queue = append(ls.queue, lockWaiter{node: from, tok: tok})
	})
}

// lockRelease runs on the manager node.
func (k *Kernel) lockRelease(id int) {
	ls := k.lock(id)
	k.Eng.After(k.Cfg.Costs.LockServiceCost, func() {
		if len(ls.queue) == 0 {
			ls.held = false
			return
		}
		next := ls.queue[0]
		copy(ls.queue, ls.queue[1:])
		ls.queue = ls.queue[:len(ls.queue)-1]
		k.grantLock(ls, next)
	})
}

func (k *Kernel) grantLock(ls *lockState, w lockWaiter) {
	k.Net.Send(network.NodeID(ls.home), w.node, network.CatControl, 16,
		&protoMsg{kind: msgLockGrant, tok: w.tok})
}

// barrierState lives on the master node.
type barrierState struct {
	parties int
	arrived []lockWaiter
	// Episodes counts completed barrier crossings.
	Episodes int64
}

// Barrier joins a cluster-wide barrier with the given party count. The
// calling thread's interval closes, its OALs piggyback on the arrival
// message (the barrier manager is the master JVM), and on release the
// node's sync epoch advances.
func (t *Thread) Barrier(barrierID, parties int) {
	if parties <= 0 {
		panic("gos: barrier needs positive party count")
	}
	t.closeInterval()
	t.flushCPU()
	tok := t.node.newToken(t)
	parts := []network.Part{{Cat: network.CatControl, Bytes: 16}}
	pl := t.node.drainOAL(t)
	if pl != nil {
		parts = append(parts, network.Part{Cat: network.CatOAL, Bytes: pl.wire})
	}
	pm := &protoMsg{kind: msgBarrierArrive, bar: barrierID, tok: tok, parties: parties}
	if pl != nil {
		pm.oal, pm.sum = pl.batch, pl.sum
	}
	t.k.Net.SendParts(network.NodeID(t.node.id), 0, parts, pm)
	t.proc.Block(fmt.Sprintf("barrier%d", barrierID))
	t.node.advanceEpoch()
}

// barrierArrive runs on the master node. The party count travels in every
// arrival message; arrivals must agree on it.
func (k *Kernel) barrierArrive(id int, from network.NodeID, tok int64, pl *oalPayload, parties int) {
	k.master.IngestPayload(pl)
	bs := k.barriers[id]
	if bs == nil {
		bs = &barrierState{parties: parties}
		k.barriers[id] = bs
	}
	if bs.parties != parties {
		panic(fmt.Sprintf("gos: barrier %d party mismatch: %d vs %d", id, bs.parties, parties))
	}
	bs.arrived = append(bs.arrived, lockWaiter{node: from, tok: tok})
	if len(bs.arrived) >= bs.parties {
		waiters := bs.arrived
		bs.arrived = nil
		bs.Episodes++
		k.stats.Barriers++
		k.Eng.After(k.Cfg.Costs.BarrierServiceCost, func() {
			for _, w := range waiters {
				k.Net.Send(0, w.node, network.CatControl, 16,
					&protoMsg{kind: msgBarrierRelease, tok: w.tok})
			}
		})
	}
}
