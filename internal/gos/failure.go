package gos

import (
	"jessica2/internal/network"
	"jessica2/internal/sim"
)

// This file is the kernel's failure-tolerance layer: a heartbeat/lease
// failure detector on the master, safe-point evacuation of dead nodes'
// threads, and a sequence-numbered ack/retry path for dedicated OAL
// flushes. Everything is sim-clock driven and deterministic — heartbeats,
// lease sweeps and retransmit timeouts are ordinary engine events, so a
// run under failures is exactly as reproducible as a clean one. The whole
// layer is gated on Config.Failure: when nil, no heartbeat traffic, no
// sequence numbers, no acks — byte-identical behavior to a build without
// this file.

// FailureConfig enables and tunes the failure-tolerance layer. Zero-valued
// fields take the DefaultFailureConfig values, so &FailureConfig{} is a
// fully defaulted enablement.
type FailureConfig struct {
	// HeartbeatInterval is the worker beat period. A worker skips a beat
	// when its CPU speed is below SuspendBelowSpeed — that, not an
	// explicit crash flag, is how the scenario layer's crash crawl
	// (scenario.DefaultCrashFactor) silences a node; the detector cannot
	// tell a dead node from a catatonic one, by design.
	HeartbeatInterval sim.Time
	// LeaseTimeout is how long the master tolerates silence before
	// declaring a worker dead.
	LeaseTimeout sim.Time
	// SweepInterval is the master's lease-check period.
	SweepInterval sim.Time
	// FlushTimeout is the ack wait before the first OAL flush retransmit;
	// subsequent waits add FlushBackoff doubling per attempt, capped at
	// MaxFlushBackoff. After MaxFlushRetries retransmits the flush is
	// abandoned (profiling data is advisory — bounded loss degrades the
	// TCM, it must never wedge the run).
	FlushTimeout    sim.Time
	FlushBackoff    sim.Time
	MaxFlushBackoff sim.Time
	MaxFlushRetries int
	// SuspendBelowSpeed gates heartbeat emission (see HeartbeatInterval).
	SuspendBelowSpeed float64
	// HeartbeatBytes is the on-wire size of one beat.
	HeartbeatBytes int
	// NoEvacuation disables moving a dead node's threads; the detector
	// still declares death and decays its correlations.
	NoEvacuation bool
	// EvacPayloadBytes is the migration payload per evacuated thread
	// (stack context; no sticky set is prefetched on an emergency move).
	EvacPayloadBytes int
	// DecayFactor scales a dead node's threads' accumulated correlations
	// (tcm DecayThreads) when death is declared. 0 means the default 0.5;
	// use a negative value for full quarantine (clamped to 0).
	DecayFactor float64
}

// DefaultFailureConfig returns the defaulted enablement.
func DefaultFailureConfig() *FailureConfig {
	return &FailureConfig{
		HeartbeatInterval: 20 * sim.Millisecond,
		LeaseTimeout:      60 * sim.Millisecond,
		SweepInterval:     20 * sim.Millisecond,
		FlushTimeout:      30 * sim.Millisecond,
		FlushBackoff:      10 * sim.Millisecond,
		MaxFlushBackoff:   200 * sim.Millisecond,
		MaxFlushRetries:   6,
		SuspendBelowSpeed: 0.2,
		HeartbeatBytes:    32,
		EvacPayloadBytes:  2048,
		DecayFactor:       0.5,
	}
}

// withDefaults fills zero-valued fields.
func (fc FailureConfig) withDefaults() FailureConfig {
	d := DefaultFailureConfig()
	if fc.HeartbeatInterval <= 0 {
		fc.HeartbeatInterval = d.HeartbeatInterval
	}
	if fc.LeaseTimeout <= 0 {
		fc.LeaseTimeout = d.LeaseTimeout
	}
	if fc.SweepInterval <= 0 {
		fc.SweepInterval = d.SweepInterval
	}
	if fc.FlushTimeout <= 0 {
		fc.FlushTimeout = d.FlushTimeout
	}
	if fc.FlushBackoff <= 0 {
		fc.FlushBackoff = d.FlushBackoff
	}
	if fc.MaxFlushBackoff <= 0 {
		fc.MaxFlushBackoff = d.MaxFlushBackoff
	}
	if fc.MaxFlushRetries <= 0 {
		fc.MaxFlushRetries = d.MaxFlushRetries
	}
	if fc.SuspendBelowSpeed <= 0 {
		fc.SuspendBelowSpeed = d.SuspendBelowSpeed
	}
	if fc.HeartbeatBytes <= 0 {
		fc.HeartbeatBytes = d.HeartbeatBytes
	}
	if fc.EvacPayloadBytes <= 0 {
		fc.EvacPayloadBytes = d.EvacPayloadBytes
	}
	if fc.DecayFactor == 0 {
		fc.DecayFactor = d.DecayFactor
	}
	return fc
}

// FailureStats counts failure-layer activity. It is a struct separate from
// KernelStats on purpose: reports render KernelStats verbatim, and the
// failure-disabled goldens must stay byte-identical.
type FailureStats struct {
	HeartbeatsSent    int64 // beats that reached the wire
	HeartbeatsSkipped int64 // beats suppressed below SuspendBelowSpeed
	LeaseExpiries     int64 // workers declared dead
	NodeRecoveries    int64 // declared-dead workers heard from again
	Evacuations       int64 // safe-point thread moves requested off dead nodes
	DecayPasses       int64 // TCM quarantine/decay passes
	FlushesSent       int64 // sequence-numbered OAL flushes initiated
	FlushRetries      int64 // retransmits after ack timeout
	FlushesAcked      int64
	FlushesAbandoned  int64 // gave up after MaxFlushRetries
	DuplicateFlushes  int64 // master-side dedup hits (re-acked, not re-ingested)
	LockFailovers     int64 // locks re-homed off declared-dead managers
	LockReclaims      int64 // wedged locks freed after their holder's node died
}

// NodeHealth is one node's liveness and flush-path state.
type NodeHealth struct {
	Node  int
	Alive bool
	// LastBeat is the master's view of the node's last heartbeat (zero for
	// node 0, which is trivially alive).
	LastBeat sim.Time
	// InflightFlushes is the node's unacked OAL flush count; LastAckAt is
	// when it last heard an ack — together the flush-path staleness signal.
	InflightFlushes int
	LastAckAt       sim.Time
}

// HealthSnapshot is the failure layer's state at a point in virtual time,
// the health feed policies consume from session snapshots.
type HealthSnapshot struct {
	LiveNodes int
	Nodes     []NodeHealth
	Stats     FailureStats
}

// FailureEnabled reports whether the failure-tolerance layer is on.
func (k *Kernel) FailureEnabled() bool { return k.Cfg.Failure != nil }

// AddHealthListener registers a callback on the failure detector's
// declare-dead and revival transitions — the push form of the HealthSnapshot
// poll, for consumers that must react at event granularity (the serving
// path's circuit breakers re-dispatch a dead node's queued requests from
// here). Listeners fire inside the detector's own engine events (the lease
// sweep, a revival beat), so their ordering is as deterministic as the
// detector itself. Registration alone schedules nothing and charges
// nothing: a run with passive listeners is byte-identical to one without.
// Listeners are never invoked when the failure layer is disabled.
func (k *Kernel) AddHealthListener(fn func(node int, alive bool)) {
	if fn == nil {
		return
	}
	k.healthLs = append(k.healthLs, fn)
}

// notifyHealth fans a liveness transition out to the registered listeners.
func (k *Kernel) notifyHealth(node int, alive bool) {
	for _, fn := range k.healthLs {
		fn(node, alive)
	}
}

// FailureStats returns a snapshot of the failure-layer counters.
func (k *Kernel) FailureStats() FailureStats { return k.fstats }

// HealthInto fills a health snapshot, reusing dst's storage (nil
// allocates). Returns nil when the failure layer is disabled.
func (k *Kernel) HealthInto(dst *HealthSnapshot) *HealthSnapshot {
	if !k.FailureEnabled() {
		return nil
	}
	if dst == nil {
		dst = &HealthSnapshot{}
	}
	dst.Nodes = dst.Nodes[:0]
	live := 0
	for i, n := range k.nodes {
		h := NodeHealth{Node: i, Alive: true,
			InflightFlushes: len(n.inflight), LastAckAt: n.lastAckAt}
		if k.fd != nil && i > 0 {
			h.Alive = !k.fd.dead[i]
			h.LastBeat = k.fd.lastBeat[i]
		}
		if h.Alive {
			live++
		}
		dst.Nodes = append(dst.Nodes, h)
	}
	dst.LiveNodes = live
	dst.Stats = k.fstats
	return dst
}

// failureDetector is the master-side lease table plus the per-source flush
// dedup state. Created lazily at the first SpawnThread (heartbeat and
// sweep loops are recurring engine events; they stop rescheduling once all
// threads finish, so the event queue still drains).
type failureDetector struct {
	k        *Kernel
	lastBeat []sim.Time
	dead     []bool
	seen     []map[int64]bool // per-source admitted flush seqs
}

// startFailureDetector is idempotent; a no-op when failure is disabled or
// the cluster has no workers to watch.
func (k *Kernel) startFailureDetector() {
	if !k.FailureEnabled() || k.fd != nil || k.NumNodes() < 2 {
		return
	}
	fd := &failureDetector{
		k:        k,
		lastBeat: make([]sim.Time, k.NumNodes()),
		dead:     make([]bool, k.NumNodes()),
		seen:     make([]map[int64]bool, k.NumNodes()),
	}
	k.fd = fd
	now := k.Eng.Now()
	for i := 1; i < k.NumNodes(); i++ {
		fd.lastBeat[i] = now // the lease clock starts when watching starts
		fd.startBeats(k.nodes[i])
	}
	fd.startSweep()
}

// startBeats runs the worker's heartbeat loop.
func (fd *failureDetector) startBeats(n *Node) {
	fc := &fd.k.fcfg
	var beat func()
	beat = func() {
		if fd.k.AllThreadsFinished() {
			return
		}
		if n.cpu.Speed() >= fc.SuspendBelowSpeed {
			fd.k.fstats.HeartbeatsSent++
			fd.k.Net.Send(network.NodeID(n.id), 0, network.CatControl,
				fc.HeartbeatBytes, &protoMsg{kind: msgHeartbeat})
		} else {
			fd.k.fstats.HeartbeatsSkipped++
		}
		fd.k.Eng.After(fc.HeartbeatInterval, beat)
	}
	fd.k.Eng.After(fc.HeartbeatInterval, beat)
}

// startSweep runs the master's lease-expiry loop.
func (fd *failureDetector) startSweep() {
	fc := &fd.k.fcfg
	var sweep func()
	sweep = func() {
		if fd.k.AllThreadsFinished() {
			return
		}
		now := fd.k.Eng.Now()
		for i := 1; i < fd.k.NumNodes(); i++ {
			if !fd.dead[i] && now-fd.lastBeat[i] > fc.LeaseTimeout {
				fd.declareDead(i)
			}
		}
		fd.k.reclaimDeadHolderLocks()
		fd.k.Eng.After(fc.SweepInterval, sweep)
	}
	fd.k.Eng.After(fc.SweepInterval, sweep)
}

// onBeat refreshes a worker's lease; a beat from a declared-dead worker
// (restart, or a healed partition releasing deferred beats) revives it.
func (fd *failureDetector) onBeat(node int) {
	if node <= 0 || node >= len(fd.lastBeat) {
		return
	}
	fd.lastBeat[node] = fd.k.Eng.Now()
	if fd.dead[node] {
		fd.dead[node] = false
		fd.k.fstats.NodeRecoveries++
		fd.k.restoreLocks(node)
		fd.k.notifyHealth(node, true)
	}
}

// declareDead expires a worker's lease: its threads' accumulated
// correlations are decayed (graceful degradation — stale evidence must not
// dominate future placement) and, unless disabled, its unfinished threads
// are asked to evacuate at their next safe point, each to the
// least-loaded live node (lowest id on ties). Iteration is in thread-id
// order, so targets are deterministic.
func (fd *failureDetector) declareDead(node int) {
	fd.dead[node] = true
	fd.k.fstats.LeaseExpiries++
	fd.k.failoverLocks(node)
	fd.k.notifyHealth(node, false)
	fc := &fd.k.fcfg

	var deadThreads []int
	load := make([]int, fd.k.NumNodes())
	for _, t := range fd.k.threads {
		if t.finished {
			continue
		}
		load[t.node.id]++
		if t.node.id == node {
			deadThreads = append(deadThreads, t.id)
		}
	}
	if len(deadThreads) > 0 && fc.DecayFactor < 1 {
		fd.k.master.DecayThreads(deadThreads, fc.DecayFactor)
		fd.k.fstats.DecayPasses++
	}
	if fc.NoEvacuation {
		return
	}
	for _, tid := range deadThreads {
		target := fd.evacTarget(load)
		if target < 0 {
			return // no live node left to take them
		}
		load[target]++
		payload := fc.EvacPayloadBytes
		fd.k.threads[tid].AtSafePoint(func(th *Thread) { th.MoveTo(target, payload) })
		fd.k.fstats.Evacuations++
	}
}

// evacTarget picks the least-loaded live node, lowest id on ties; -1 when
// every node is dead.
func (fd *failureDetector) evacTarget(load []int) int {
	best := -1
	for i := 0; i < fd.k.NumNodes(); i++ {
		if i > 0 && fd.dead[i] {
			continue
		}
		if best < 0 || load[i] < load[best] {
			best = i
		}
	}
	return best
}

// admitFlush records a (source, seq) flush as ingested; false means it was
// already admitted (a retransmit racing its own ack, or an interceptor
// duplicate) and must not be re-ingested — IngestPayload recycles records
// into the kernel pool, so a second ingest of the same payload would
// corrupt it.
func (fd *failureDetector) admitFlush(src int, seq int64) bool {
	if src < 0 || src >= len(fd.seen) {
		return true
	}
	m := fd.seen[src]
	if m == nil {
		m = make(map[int64]bool)
		fd.seen[src] = m
	}
	if m[seq] {
		return false
	}
	m[seq] = true
	return true
}

// --- reliable OAL flush path (worker side) ---------------------------------

const flushAckBytes = 16

// flushWait is the ack wait before retransmit number attempt+1:
// FlushTimeout first, then + FlushBackoff doubling per attempt, capped.
func (k *Kernel) flushWait(attempt int) sim.Time {
	if attempt == 0 {
		return k.fcfg.FlushTimeout
	}
	b := k.fcfg.FlushBackoff << uint(attempt-1)
	if b <= 0 || b > k.fcfg.MaxFlushBackoff { // <= 0 catches shift overflow
		b = k.fcfg.MaxFlushBackoff
	}
	return k.fcfg.FlushTimeout + b
}

// sendFlush ships one drained OAL payload under the reliable path: it gets
// the node's next sequence number, is tracked until acked, and is
// retransmitted on timeout with capped exponential backoff until
// MaxFlushRetries, after which it is abandoned (bounded loss, surfaced in
// FailureStats and the health snapshot).
func (n *Node) sendFlush(p *oalPayload) {
	if n.inflight == nil {
		n.inflight = make(map[int64]*oalPayload)
	}
	n.flushSeq++
	n.inflight[n.flushSeq] = p
	n.k.fstats.FlushesSent++
	n.transmitFlush(n.flushSeq, p, 0)
}

func (n *Node) transmitFlush(seq int64, p *oalPayload, attempt int) {
	n.k.Net.Send(network.NodeID(n.id), 0, network.CatOAL, p.wire,
		&protoMsg{kind: msgOALBatch, tok: seq, oal: p.batch, sum: p.sum})
	n.k.Eng.After(n.k.flushWait(attempt), func() {
		if _, waiting := n.inflight[seq]; !waiting {
			return // acked in the meantime
		}
		if attempt >= n.k.fcfg.MaxFlushRetries {
			delete(n.inflight, seq)
			n.k.fstats.FlushesAbandoned++
			return
		}
		n.k.fstats.FlushRetries++
		n.transmitFlush(seq, p, attempt+1)
	})
}

// onFlushAck retires an inflight flush; late duplicate acks are ignored.
func (n *Node) onFlushAck(seq int64) {
	if _, ok := n.inflight[seq]; !ok {
		return
	}
	delete(n.inflight, seq)
	n.lastAckAt = n.k.Eng.Now()
	n.k.fstats.FlushesAcked++
}

// receiveFlush is the master-side (node 0) ingestion of a remote OAL
// flush. Un-sequenced flushes (failure layer off, or a peer predating it)
// pass straight through; sequenced ones are deduplicated BEFORE ingestion
// and always acked — acking a duplicate is what makes retransmits safe.
func (n *Node) receiveFlush(from network.NodeID, pm *protoMsg) {
	if pm.tok == 0 || !n.k.FailureEnabled() {
		n.k.master.IngestPayload(&oalPayload{batch: pm.oal, sum: pm.sum})
		return
	}
	if n.k.fd == nil || n.k.fd.admitFlush(int(from), pm.tok) {
		n.k.master.IngestPayload(&oalPayload{batch: pm.oal, sum: pm.sum})
	} else {
		n.k.fstats.DuplicateFlushes++
	}
	n.k.Net.Send(network.NodeID(n.id), from, network.CatControl, flushAckBytes,
		&protoMsg{kind: msgOALAck, tok: pm.tok})
}
