package gos

import (
	"testing"

	"jessica2/internal/heap"
	"jessica2/internal/network"
	"jessica2/internal/sim"
)

// testKernel builds a small kernel for protocol tests.
func testKernel(nodes int, mode TrackingMode) *Kernel {
	cfg := DefaultConfig()
	cfg.Nodes = nodes
	cfg.Tracking = mode
	return NewKernel(cfg)
}

func TestHomeAllocationAndLocalAccess(t *testing.T) {
	k := testKernel(2, TrackingOff)
	cls := k.Reg.DefineClass("X", 64, 0)
	var faults int64
	k.SpawnThread(0, "t0", func(th *Thread) {
		o := th.Alloc(cls)
		if o.Home != 0 {
			t.Errorf("home = %d, want 0", o.Home)
		}
		th.Write(o)
		th.Read(o)
		faults = th.Stats().Faults
	})
	k.Run()
	if faults != 0 {
		t.Fatalf("home accesses faulted %d times", faults)
	}
}

func TestRemoteFaultFetchesOnce(t *testing.T) {
	k := testKernel(2, TrackingOff)
	cls := k.Reg.DefineClass("X", 64, 0)
	var obj *heap.Object
	k.SpawnThread(0, "owner", func(th *Thread) {
		obj = th.Alloc(cls)
		th.Write(obj)
		th.Barrier(1, 2)
	})
	k.SpawnThread(1, "reader", func(th *Thread) {
		th.Barrier(1, 2)
		th.Read(obj)
		th.Read(obj) // cached: no second fault
		th.Read(obj)
	})
	k.Run()
	st := k.Stats()
	if st.Faults != 1 {
		t.Fatalf("faults = %d, want 1", st.Faults)
	}
	if st.FaultBytes != 64 {
		t.Fatalf("fault bytes = %d, want 64", st.FaultBytes)
	}
}

// TestWriteVisibilityAfterBarrier is the HLRC coherence invariant: a write
// released before a barrier invalidates remote caches, so readers re-fetch.
func TestWriteVisibilityAfterBarrier(t *testing.T) {
	k := testKernel(2, TrackingOff)
	cls := k.Reg.DefineClass("X", 64, 0)
	var obj *heap.Object
	k.SpawnThread(0, "writer", func(th *Thread) {
		obj = th.Alloc(cls)
		th.Write(obj)
		th.Barrier(1, 2) // round 0: publish
		th.Barrier(2, 2) // round 1: reader reads
		th.Write(obj)    // second update
		th.Barrier(3, 2)
		th.Barrier(4, 2)
	})
	var readerFaults int64
	k.SpawnThread(1, "reader", func(th *Thread) {
		th.Barrier(1, 2)
		th.Read(obj) // fault 1
		th.Read(obj) // cached
		th.Barrier(2, 2)
		th.Barrier(3, 2)
		th.Read(obj) // stale after writer's release: fault 2
		th.Barrier(4, 2)
		readerFaults = th.Stats().Faults
	})
	k.Run()
	if readerFaults != 2 {
		t.Fatalf("reader faults = %d, want 2 (initial + post-invalidation)", readerFaults)
	}
}

// TestNoRefetchWithinInterval: staleness is only observed at sync points
// (epoch boundaries), not mid-interval — LRC semantics.
func TestNoRefetchWithinInterval(t *testing.T) {
	k := testKernel(2, TrackingOff)
	cls := k.Reg.DefineClass("X", 64, 0)
	var obj *heap.Object
	k.SpawnThread(0, "writer", func(th *Thread) {
		obj = th.Alloc(cls)
		th.Write(obj)
		th.Barrier(1, 2)
		// Keep updating without the reader synchronizing.
		for i := 0; i < 5; i++ {
			th.Write(obj)
			th.Release(99) // release-only interval closes, bumping versions
		}
		th.Barrier(2, 2)
	})
	var faults int64
	k.SpawnThread(1, "reader", func(th *Thread) {
		th.Barrier(1, 2)
		for i := 0; i < 10; i++ {
			th.Read(obj) // one fault; stays valid within the interval
		}
		th.Barrier(2, 2)
		faults = th.Stats().Faults
	})
	k.Run()
	if faults != 1 {
		t.Fatalf("reader faulted %d times within one interval, want 1", faults)
	}
}

func TestLockMutualExclusionFIFO(t *testing.T) {
	k := testKernel(4, TrackingOff)
	var order []int
	var inside int
	for i := 0; i < 4; i++ {
		i := i
		k.SpawnThread(i, "t", func(th *Thread) {
			th.Compute(sim.Time(i+1) * sim.Microsecond) // stagger arrivals
			th.Acquire(7)
			inside++
			if inside != 1 {
				t.Errorf("mutual exclusion violated: %d inside", inside)
			}
			order = append(order, i)
			th.Compute(50 * sim.Microsecond)
			inside--
			th.Release(7)
		})
	}
	k.Run()
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	if k.Stats().LockAcquires != 4 {
		t.Fatalf("acquires = %d", k.Stats().LockAcquires)
	}
}

func TestBarrierJoinsAll(t *testing.T) {
	k := testKernel(4, TrackingOff)
	arrived := 0
	released := 0
	for i := 0; i < 4; i++ {
		i := i
		k.SpawnThread(i, "t", func(th *Thread) {
			th.Compute(sim.Time(i*100) * sim.Microsecond)
			arrived++
			th.Barrier(5, 4)
			if arrived != 4 {
				t.Errorf("released before all arrived: %d", arrived)
			}
			released++
		})
	}
	k.Run()
	if released != 4 || k.Stats().Barriers != 1 {
		t.Fatalf("released=%d episodes=%d", released, k.Stats().Barriers)
	}
}

func TestBarrierPartyMismatchPanics(t *testing.T) {
	k := testKernel(2, TrackingOff)
	k.SpawnThread(0, "a", func(th *Thread) { th.Barrier(1, 2) })
	k.SpawnThread(1, "b", func(th *Thread) { th.Barrier(1, 3) })
	defer func() {
		if recover() == nil {
			t.Error("party mismatch did not panic")
		}
	}()
	k.Run()
}

// TestAtMostOnceLogging: a thread logs each sampled object at most once
// per interval no matter how many times it accesses it.
func TestAtMostOnceLogging(t *testing.T) {
	k := testKernel(2, TrackingSampled)
	cls := k.Reg.DefineClass("X", 64, 0) // gap 1: everything sampled
	var obj *heap.Object
	k.SpawnThread(0, "owner", func(th *Thread) {
		obj = th.Alloc(cls)
		th.Write(obj)
		th.Barrier(1, 2)
		th.Barrier(2, 2)
	})
	var logged int64
	k.SpawnThread(1, "reader", func(th *Thread) {
		th.Barrier(1, 2)
		for i := 0; i < 100; i++ {
			th.Read(obj)
		}
		th.Barrier(2, 2)
		logged = th.Stats().Logged
	})
	k.Run()
	if logged != 1 {
		t.Fatalf("logged = %d, want 1 (at-most-once per interval)", logged)
	}
}

// TestFalseInvalidReenablesLogging: after an interval boundary, the logged
// object is reset to false-invalid and the next access logs again.
func TestFalseInvalidReenablesLogging(t *testing.T) {
	k := testKernel(2, TrackingSampled)
	cls := k.Reg.DefineClass("X", 64, 0)
	var obj *heap.Object
	k.SpawnThread(0, "owner", func(th *Thread) {
		obj = th.Alloc(cls)
		th.Write(obj)
		for b := 1; b <= 4; b++ {
			th.Barrier(b, 2)
		}
	})
	var logged int64
	k.SpawnThread(1, "reader", func(th *Thread) {
		th.Barrier(1, 2)
		th.Read(obj) // interval A: genuine fault, logged
		th.Barrier(2, 2)
		th.Read(obj) // interval B: correlation fault (false-invalid), logged
		th.Barrier(3, 2)
		th.Read(obj) // interval C: logged again
		th.Barrier(4, 2)
		logged = th.Stats().Logged
	})
	k.Run()
	if logged != 3 {
		t.Fatalf("logged = %d, want 3 (once per interval)", logged)
	}
	if k.Stats().FalseInvalidHit < 2 {
		t.Fatalf("correlation faults = %d, want >= 2", k.Stats().FalseInvalidHit)
	}
}

// TestUnsampledObjectsNotLogged: with a wide gap, unsampled objects never
// produce OAL entries.
func TestUnsampledObjectsNotLogged(t *testing.T) {
	k := testKernel(2, TrackingSampled)
	cls := k.Reg.DefineClass("X", 64, 0)
	cls.SetGap(64, 61) // sample ~1/61 of instances
	var objs []*heap.Object
	k.SpawnThread(0, "owner", func(th *Thread) {
		for i := 0; i < 61; i++ {
			o := th.Alloc(cls)
			th.Write(o)
			objs = append(objs, o)
		}
		th.Barrier(1, 2)
		th.Barrier(2, 2)
	})
	var logged int64
	k.SpawnThread(1, "reader", func(th *Thread) {
		th.Barrier(1, 2)
		for _, o := range objs {
			th.Read(o)
		}
		th.Barrier(2, 2)
		logged = th.Stats().Logged
	})
	k.Run()
	if logged != 1 {
		t.Fatalf("logged = %d, want exactly 1 of 61 at gap 61", logged)
	}
}

// TestScaledEstimator: the logged bytes are amortized × gap, estimating
// the class's full volume.
func TestScaledEstimator(t *testing.T) {
	k := testKernel(2, TrackingSampled)
	cls := k.Reg.DefineClass("X", 100, 0)
	cls.SetGap(8, 7)
	var objs []*heap.Object
	k.SpawnThread(0, "owner", func(th *Thread) {
		for i := 0; i < 70; i++ {
			o := th.Alloc(cls)
			th.Write(o)
			objs = append(objs, o)
		}
		th.Barrier(1, 2)
		// Owner also touches everything so the pair correlates.
		for _, o := range objs {
			th.Read(o)
		}
		th.Barrier(2, 2)
	})
	k.SpawnThread(1, "reader", func(th *Thread) {
		th.Barrier(1, 2)
		for _, o := range objs {
			th.Read(o)
		}
		th.Barrier(2, 2)
	})
	k.Run()
	k.FlushAllOAL()
	m, _ := k.TCM()
	got := m.At(0, 1)
	truth := float64(70 * 100)
	if got < truth*0.7 || got > truth*1.3 {
		t.Fatalf("estimated shared volume %v, truth %v (scaled estimator off)", got, truth)
	}
}

func TestTrackingExactLogsEverything(t *testing.T) {
	k := testKernel(2, TrackingExact)
	cls := k.Reg.DefineClass("X", 64, 0)
	cls.SetGap(1024, 1021) // sampling gap irrelevant in exact mode
	var objs []*heap.Object
	k.SpawnThread(0, "owner", func(th *Thread) {
		for i := 0; i < 10; i++ {
			o := th.Alloc(cls)
			th.Write(o)
			objs = append(objs, o)
		}
		th.Barrier(1, 2)
		th.Barrier(2, 2)
	})
	var logged int64
	k.SpawnThread(1, "reader", func(th *Thread) {
		th.Barrier(1, 2)
		for _, o := range objs {
			th.Read(o)
			th.Read(o)
		}
		th.Barrier(2, 2)
		logged = th.Stats().Logged
	})
	k.Run()
	if logged != 10 {
		t.Fatalf("exact mode logged %d, want 10", logged)
	}
}

func TestDiffAccounting(t *testing.T) {
	k := testKernel(2, TrackingOff)
	cls := k.Reg.DefineClass("X", 256, 0)
	var obj *heap.Object
	k.SpawnThread(0, "owner", func(th *Thread) {
		obj = th.Alloc(cls)
		th.Write(obj) // home write: no diff message
		th.Barrier(1, 2)
		th.Barrier(2, 2)
	})
	k.SpawnThread(1, "writer", func(th *Thread) {
		th.Barrier(1, 2)
		th.Write(obj) // remote write: diff at interval close
		th.Barrier(2, 2)
	})
	k.Run()
	st := k.Stats()
	if st.DiffMessages != 1 {
		t.Fatalf("diff messages = %d, want 1", st.DiffMessages)
	}
	if st.DiffBytes < 256 {
		t.Fatalf("diff bytes = %d, want >= 256", st.DiffBytes)
	}
}

func TestPartialWriteDiffSize(t *testing.T) {
	k := testKernel(2, TrackingOff)
	cls := k.Reg.DefineArrayClass("arr", 8)
	var obj *heap.Object
	k.SpawnThread(0, "owner", func(th *Thread) {
		obj = th.AllocArray(cls, 1024) // 8 KB
		th.WriteElems(obj, 1024)
		th.Barrier(1, 2)
		th.Barrier(2, 2)
	})
	k.SpawnThread(1, "writer", func(th *Thread) {
		th.Barrier(1, 2)
		th.WriteElems(obj, 16) // dirty 128 bytes only
		th.Barrier(2, 2)
	})
	k.Run()
	if st := k.Stats(); st.DiffBytes > 512 {
		t.Fatalf("partial write shipped %d diff bytes", st.DiffBytes)
	}
}

func TestOALPiggybackOnBarrier(t *testing.T) {
	k := testKernel(2, TrackingSampled)
	cls := k.Reg.DefineClass("X", 64, 0)
	var objs []*heap.Object
	k.SpawnThread(0, "owner", func(th *Thread) {
		for i := 0; i < 20; i++ {
			o := th.Alloc(cls)
			th.Write(o)
			objs = append(objs, o)
		}
		th.Barrier(1, 2)
		th.Barrier(2, 2)
	})
	k.SpawnThread(1, "reader", func(th *Thread) {
		th.Barrier(1, 2)
		for _, o := range objs {
			th.Read(o)
		}
		th.Barrier(2, 2)
	})
	k.Run()
	st := k.Net.Stats()
	if st.CatBytes(network.CatOAL) == 0 {
		t.Fatal("no OAL traffic despite sampled tracking")
	}
	// Piggybacked: OAL bytes but no dedicated jumbo message needed for
	// this tiny run — message count for OAL equals the piggyback parts.
	if k.Stats().OALEntries == 0 || k.Stats().OALRecords == 0 {
		t.Fatal("no OAL records collected")
	}
}

func TestOALTransferDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.Tracking = TrackingSampled
	cfg.TransferOALs = false
	k := NewKernel(cfg)
	cls := k.Reg.DefineClass("X", 64, 0)
	var objs []*heap.Object
	k.SpawnThread(0, "owner", func(th *Thread) {
		for i := 0; i < 20; i++ {
			o := th.Alloc(cls)
			th.Write(o)
			objs = append(objs, o)
		}
		th.Barrier(1, 2)
		th.Barrier(2, 2)
	})
	k.SpawnThread(1, "reader", func(th *Thread) {
		th.Barrier(1, 2)
		for _, o := range objs {
			th.Read(o)
		}
		th.Barrier(2, 2)
	})
	k.Run()
	k.FlushAllOAL()
	if b := k.Net.Stats().CatBytes(network.CatOAL); b != 0 {
		t.Fatalf("OAL traffic %d with transfer disabled", b)
	}
	// The master still ingests locally so accuracy studies can run.
	if k.Master().IngestedEntries() == 0 {
		t.Fatal("master saw no entries in local-ingest mode")
	}
}

func TestMigrationMovesThread(t *testing.T) {
	k := testKernel(2, TrackingOff)
	cls := k.Reg.DefineClass("X", 64, 0)
	var migrated bool
	k.SpawnThread(0, "mover", func(th *Thread) {
		o := th.Alloc(cls)
		th.Write(o)
		if th.Node().ID() != 0 {
			t.Error("wrong start node")
		}
		th.MoveTo(1, 1024)
		if th.Node().ID() != 1 {
			t.Error("thread did not move")
		}
		// Own object is now remote: read faults.
		th.Read(o)
		if th.Stats().Faults != 1 {
			t.Errorf("post-migration faults = %d, want 1", th.Stats().Faults)
		}
		migrated = true
	})
	k.Run()
	if !migrated {
		t.Fatal("body did not complete")
	}
	if k.Net.Stats().CatBytes(network.CatMigration) != 1024 {
		t.Fatal("migration bytes unaccounted")
	}
}

func TestInstallPrefetchedAvoidsFaults(t *testing.T) {
	k := testKernel(2, TrackingOff)
	cls := k.Reg.DefineClass("X", 64, 0)
	k.SpawnThread(0, "mover", func(th *Thread) {
		var objs []*heap.Object
		for i := 0; i < 10; i++ {
			o := th.Alloc(cls)
			th.Write(o)
			objs = append(objs, o)
		}
		th.MoveTo(1, 2048)
		k.InstallPrefetched(1, objs)
		for _, o := range objs {
			th.Read(o)
		}
		if f := th.Stats().Faults; f != 0 {
			t.Errorf("faults = %d with prefetched set, want 0", f)
		}
	})
	k.Run()
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (sim.Time, KernelStats) {
		k := testKernel(4, TrackingSampled)
		cls := k.Reg.DefineClass("X", 64, 0)
		shared := make([]*heap.Object, 0, 40)
		for i := 0; i < 4; i++ {
			i := i
			k.SpawnThread(i, "t", func(th *Thread) {
				for j := 0; j < 10; j++ {
					o := th.Alloc(cls)
					th.Write(o)
					shared = append(shared, o)
				}
				th.Barrier(1, 4)
				for _, o := range shared {
					th.Read(o)
					th.Compute(3 * sim.Microsecond)
				}
				th.Barrier(2, 4)
			})
		}
		end := k.Run()
		return end, k.Stats()
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 {
		t.Fatalf("times differ: %v vs %v", e1, e2)
	}
	if s1 != s2 {
		t.Fatalf("stats differ:\n%+v\n%+v", s1, s2)
	}
}

func TestThreadFinishTime(t *testing.T) {
	k := testKernel(2, TrackingOff)
	k.SpawnThread(0, "a", func(th *Thread) { th.Compute(10 * sim.Millisecond) })
	k.SpawnThread(1, "b", func(th *Thread) { th.Compute(30 * sim.Millisecond) })
	end := k.Run()
	if end != 30*sim.Millisecond {
		t.Fatalf("workload end = %v, want 30ms", end)
	}
	if !k.AllThreadsFinished() {
		t.Fatal("threads not finished")
	}
}

func TestIntervalContextPCs(t *testing.T) {
	k := testKernel(1, TrackingSampled)
	cls := k.Reg.DefineClass("X", 64, 0)
	k.SpawnThread(0, "t", func(th *Thread) {
		o := th.Alloc(cls)
		th.Write(o)
		th.Read(o)
		if th.PC() != 2 {
			t.Errorf("pc = %d, want 2", th.PC())
		}
		th.Release(1)
		th.Read(o)
	})
	k.Run()
	if k.Stats().Intervals != 2 {
		t.Fatalf("intervals = %d, want 2", k.Stats().Intervals)
	}
}

// TestOALJumboFlushThreshold: exceeding OALFlushEntries triggers a
// dedicated jumbo message without waiting for a sync point.
func TestOALJumboFlushThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.Tracking = TrackingSampled
	cfg.OALFlushEntries = 8
	k := NewKernel(cfg)
	cls := k.Reg.DefineClass("X", 64, 0)
	var objs []*heap.Object
	k.SpawnThread(0, "owner", func(th *Thread) {
		for i := 0; i < 64; i++ {
			o := th.Alloc(cls)
			th.Write(o)
			objs = append(objs, o)
		}
		th.Barrier(1, 2)
		th.Barrier(2, 2)
	})
	k.SpawnThread(1, "reader", func(th *Thread) {
		th.Barrier(1, 2)
		// Many release-delimited intervals accumulate records past the
		// threshold (lock 1 homes at node 1 — no piggyback to master).
		for r := 0; r < 16; r++ {
			for j := 0; j < 4; j++ {
				th.Read(objs[(r*4+j)%64])
			}
			th.Acquire(1)
			th.Release(1)
		}
		th.Barrier(2, 2)
	})
	k.Run()
	st := k.Net.Stats()
	// At least one dedicated OAL message (jumbo) must have been sent
	// before the final barrier piggyback.
	if st.Messages[network.CatOAL] < 2 {
		t.Fatalf("OAL messages = %d, want jumbo + piggyback", st.Messages[network.CatOAL])
	}
}

// TestResampleOnGapChange: applying a new sampling plan re-tags cached
// objects and the kernel records the resample count.
func TestResampleStatRecorded(t *testing.T) {
	k := testKernel(1, TrackingSampled)
	k.ChargeResample(123)
	if k.Stats().ResampledObjs != 123 {
		t.Fatal("resample stat not recorded")
	}
}

// TestMultipleWorkloadsShareKernel: two workload-style thread groups can
// coexist with distinct barrier/lock namespaces.
func TestMultipleThreadGroups(t *testing.T) {
	k := testKernel(2, TrackingOff)
	cls := k.Reg.DefineClass("X", 64, 0)
	done := 0
	for g := 0; g < 2; g++ {
		g := g
		for i := 0; i < 2; i++ {
			i := i
			k.SpawnThread(i, "g", func(th *Thread) {
				o := th.Alloc(cls)
				th.Write(o)
				th.Barrier(100+g, 2) // per-group barrier
				th.Acquire(200 + g)
				th.Release(200 + g)
				done++
				_ = i
			})
		}
	}
	k.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
}

// TestWriteThenReadSameInterval: a thread reading its own write within an
// interval never faults (its copy is the freshest).
func TestWriteThenReadSameInterval(t *testing.T) {
	k := testKernel(2, TrackingOff)
	cls := k.Reg.DefineClass("X", 64, 0)
	var obj *heap.Object
	k.SpawnThread(0, "owner", func(th *Thread) {
		obj = th.Alloc(cls)
		th.Write(obj)
		th.Barrier(1, 2)
		th.Barrier(2, 2)
	})
	k.SpawnThread(1, "writer", func(th *Thread) {
		th.Barrier(1, 2)
		th.Write(obj) // fault + write
		f := th.Stats().Faults
		th.Read(obj) // own data: no fault
		th.Write(obj)
		if th.Stats().Faults != f {
			t.Error("read-own-write faulted")
		}
		th.Barrier(2, 2)
	})
	k.Run()
}

// TestWriterKeepsCopyAcrossItsOwnRelease: after releasing, the writer's
// own copy stays valid at the new version (no self-invalidation).
func TestWriterKeepsCopyAcrossRelease(t *testing.T) {
	k := testKernel(2, TrackingOff)
	cls := k.Reg.DefineClass("X", 64, 0)
	var obj *heap.Object
	k.SpawnThread(0, "owner", func(th *Thread) {
		obj = th.Alloc(cls)
		th.Write(obj)
		th.Barrier(1, 2)
		th.Barrier(2, 2)
	})
	k.SpawnThread(1, "writer", func(th *Thread) {
		th.Barrier(1, 2)
		th.Write(obj)
		th.Release(7) // closes interval, ships diff
		f := th.Stats().Faults
		th.Acquire(7) // epoch advances
		th.Read(obj)  // still valid: own write is the latest version
		th.Release(7)
		if th.Stats().Faults != f {
			t.Error("writer refetched its own committed write")
		}
		th.Barrier(2, 2)
	})
	k.Run()
}

// TestCachedObjectsOfClass: the resample iteration set is sorted and
// class-filtered.
func TestCachedObjectsOfClass(t *testing.T) {
	k := testKernel(1, TrackingOff)
	a := k.Reg.DefineClass("A", 64, 0)
	b := k.Reg.DefineClass("B", 64, 0)
	k.SpawnThread(0, "t", func(th *Thread) {
		for i := 0; i < 5; i++ {
			th.Write(th.Alloc(a))
			th.Write(th.Alloc(b))
		}
	})
	k.Run()
	n := k.Node(0)
	as := n.cachedObjectsOfClass(a)
	if len(as) != 5 {
		t.Fatalf("cached A = %d", len(as))
	}
	for i := 1; i < len(as); i++ {
		if as[i].obj.ID <= as[i-1].obj.ID {
			t.Fatal("not sorted")
		}
	}
	if n.NumCopies() != 10 {
		t.Fatalf("copies = %d", n.NumCopies())
	}
}
