package gos

import (
	"jessica2/internal/heap"
	"jessica2/internal/network"
	"jessica2/internal/oal"
	"jessica2/internal/sim"
	"jessica2/internal/tcm"
)

// copyState is one node's replica header for a shared object: the 2-bit
// object state of the paper (valid/invalid) plus the false-invalid flag
// that triggers correlation faults, the fetched version (write-notice
// equivalent), and twin bookkeeping for the current interval.
type copyState struct {
	obj          *heap.Object
	valid        bool
	falseInvalid bool
	version      int64 // home version at fetch time
	checkedEpoch int64 // last sync epoch at which staleness was evaluated
	hasTwin      bool
}

// Node is one worker JVM: local heap cache, CPU, OAL buffer.
type Node struct {
	k   *Kernel
	id  int
	cpu *sim.Resource

	// copies is the node's replica-header table, indexed by ObjectID-1
	// (ObjectIDs are dense arena indexes), so the per-access lookup is an
	// array index rather than a map probe. Slots are nil until the node
	// first touches the object.
	copies    []*copyState
	numCopies int
	// copyArena bulk-allocates copyState headers in chunks; pointers into a
	// chunk stay valid for the node's lifetime.
	copyArena *copyChunk
	copyUsed  int
	// epoch advances at every synchronization point observed by the node
	// (lock acquire, barrier release); cached copies are re-validated
	// against home versions lazily when first touched in a new epoch.
	epoch int64

	// oalBuf holds closed-interval records awaiting shipment to master.
	oalBuf        []*oal.Record
	oalBufEntries int

	// summBuilder is the worker-side reorganization daemon reused across
	// distributed-TCM flushes (a fresh builder per drain would re-allocate
	// per-object state every jumbo message); rebuilt only when the thread
	// count grows. Only Summarize is read from it, so the incremental
	// builder's pair accumulator is dead weight here — but its bitset
	// ingestion (one bit test per repeat entry) and sort-free Summarize
	// more than pay for the bounded O(N²) clear at Reset, so the default
	// Builder alias is the right worker-side choice under either tag.
	summBuilder *tcm.Builder

	// pending maps in-flight remote-operation tokens to the blocked thread.
	pending map[int64]*Thread
	nextTok int64

	// Reliable OAL flush state (failure.go); all zero when the failure
	// layer is off. inflight maps sequence numbers to unacked payloads.
	flushSeq  int64
	inflight  map[int64]*oalPayload
	lastAckAt sim.Time

	// Stats
	localHits int64
}

// copyChunkLen is the copyState arena chunk size.
const copyChunkLen = 512

type copyChunk [copyChunkLen]copyState

func newNode(k *Kernel, id int) *Node {
	return &Node{
		k:       k,
		id:      id,
		cpu:     sim.NewResource(k.Eng, nodeName(id)+".cpu"),
		pending: make(map[int64]*Thread),
	}
}

func nodeName(id int) string {
	return "node" + string(rune('0'+id%10)) + string(rune('0'+id/10%10))
}

// ID returns the node index.
func (n *Node) ID() int { return n.id }

// CPU returns the node's processor resource.
func (n *Node) CPU() *sim.Resource { return n.cpu }

// Epoch returns the node's current synchronization epoch.
func (n *Node) Epoch() int64 { return n.epoch }

// copyAt returns the node's replica header for the object id, or nil if the
// node has never touched it.
func (n *Node) copyAt(id heap.ObjectID) *copyState {
	idx := int64(id) - 1
	if idx < 0 || idx >= int64(len(n.copies)) {
		return nil
	}
	return n.copies[idx]
}

// copyOf returns (creating if needed) the node's replica header for o.
// Home-node copies are created valid; remote copies start invalid.
func (n *Node) copyOf(o *heap.Object) *copyState {
	idx := int64(o.ID) - 1
	n.copies = growTo(n.copies, int(idx))
	c := n.copies[idx]
	if c == nil {
		if n.copyArena == nil || n.copyUsed == copyChunkLen {
			n.copyArena = new(copyChunk)
			n.copyUsed = 0
		}
		c = &n.copyArena[n.copyUsed]
		n.copyUsed++
		c.obj = o
		if o.Home == n.id {
			c.valid = true
		}
		n.copies[idx] = c
		n.numCopies++
	}
	return c
}

// cachedObjectsOfClass returns the node's cached objects of a class sorted
// by id — the set a resample change-notice must iterate. The copy table is
// indexed in ID order, so the result is sorted by construction.
func (n *Node) cachedObjectsOfClass(class *heap.Class) []*copyState {
	capHint := n.k.Reg.NumObjectsOfClass(class)
	if capHint > n.numCopies {
		capHint = n.numCopies
	}
	out := make([]*copyState, 0, capHint)
	for _, c := range n.copies {
		if c != nil && c.obj.Class == class {
			out = append(out, c)
		}
	}
	return out
}

// NumCopies reports how many replica headers the node holds.
func (n *Node) NumCopies() int { return n.numCopies }

// --- message protocol ------------------------------------------------------

type msgKind int

const (
	msgFetchReq msgKind = iota
	msgFetchReply
	msgDiff
	msgOALBatch
	msgLockReq
	msgLockGrant
	msgLockRelease
	msgBarrierArrive
	msgBarrierRelease
	msgMigrateIn
	msgHeartbeat
	msgOALAck
)

type protoMsg struct {
	kind    msgKind
	tok     int64
	obj     heap.ObjectID
	lock    int
	bar     int
	parties int
	oal     *oal.Batch
	sum     *tcm.Summary // distributed-TCM summary payload
	data    any
	gen     int64 // lock-manager generation (release fencing)
}

// handleMessage is the node's network handler; it runs in scheduler context.
func (n *Node) handleMessage(m *network.Message) {
	pm := m.Payload.(*protoMsg)
	switch pm.kind {
	case msgFetchReq:
		// Home-side service: charge service cost via a transient proc-less
		// delay folded into the reply latency, then reply with the data.
		o := n.k.Reg.MustObject(pm.obj)
		reply := &protoMsg{kind: msgFetchReply, tok: pm.tok, obj: o.ID,
			data: n.k.version(o.ID)}
		n.k.Eng.After(n.k.Cfg.Costs.HomeServiceCost, func() {
			n.k.Net.Send(network.NodeID(n.id), m.From, network.CatGOSData, o.Bytes(), reply)
		})
	case msgFetchReply:
		n.completePending(pm.tok)
	case msgDiff:
		// Versions were advanced synchronously at interval close (the
		// version table is the simulation's ground truth); this message
		// models the diff traffic and the home-side application cost.
		n.k.Eng.After(n.k.Cfg.Costs.HomeServiceCost, func() {})
	case msgOALBatch:
		n.receiveFlush(m.From, pm)
	case msgLockReq:
		n.k.lockRequest(pm.lock, m.From, pm.tok, pm.gen, pm.payload())
	case msgLockGrant:
		if pm.gen != n.k.lock(pm.lock).gen {
			return // superseded by a failover re-issue
		}
		n.completePending(pm.tok)
	case msgLockRelease:
		n.k.lockRelease(pm.lock, pm.gen)
	case msgBarrierArrive:
		n.k.barrierArrive(pm.bar, m.From, pm.tok, pm.payload(), pm.parties)
	case msgBarrierRelease:
		n.completePending(pm.tok)
	case msgMigrateIn:
		if fn, ok := pm.data.(func()); ok {
			fn()
		}
	case msgHeartbeat:
		if n.k.fd != nil {
			n.k.fd.onBeat(int(m.From))
		}
	case msgOALAck:
		n.onFlushAck(pm.tok)
	}
}

// newToken registers a pending blocking operation for t.
func (n *Node) newToken(t *Thread) int64 {
	n.nextTok++
	tok := n.nextTok
	n.pending[tok] = t
	return tok
}

// completePending wakes the thread blocked on tok. Protocol replies carry no
// data the simulation needs beyond the wake itself (the version table is the
// global ground truth), so there is no reply value to hand over.
func (n *Node) completePending(tok int64) {
	t := n.pending[tok]
	if t == nil {
		panic("gos: unknown pending token")
	}
	delete(n.pending, tok)
	t.proc.Wake()
}

// advanceEpoch marks a synchronization point: cached copies will be lazily
// re-validated against home versions on next touch.
func (n *Node) advanceEpoch() { n.epoch++ }

// bufferOAL queues a closed interval's record; flushes a jumbo message when
// the threshold is reached. Returns parts to piggyback instead when the
// caller is about to send to the master anyway.
func (n *Node) bufferOAL(r *oal.Record) {
	if r == nil {
		return
	}
	if len(r.Entries) == 0 {
		n.k.recycleRecord(r)
		return
	}
	n.oalBuf = append(n.oalBuf, r)
	n.oalBufEntries += len(r.Entries)
	n.k.stats.OALRecords++
	n.k.stats.OALEntries += int64(len(r.Entries))
	if n.oalBufEntries >= n.k.Cfg.OALFlushEntries {
		n.flushOAL(nil)
	}
}

// oalPayload is a drained OAL shipment: either raw records (central mode)
// or a locally reorganized per-object summary (distributed mode).
type oalPayload struct {
	batch *oal.Batch
	sum   *tcm.Summary
	wire  int
}

// drainOAL empties the buffer for shipment. In distributed-TCM mode the
// records are reorganized on the worker (charged to t when present — this
// is the reorganization work the extension moves off the master) and only
// the per-object summary travels. Returns nil if there is nothing to send.
func (n *Node) drainOAL(t *Thread) *oalPayload {
	if !n.k.Cfg.TransferOALs || len(n.oalBuf) == 0 {
		return nil
	}
	recs := n.oalBuf
	n.oalBuf = nil
	n.oalBufEntries = 0
	p := &oalPayload{}
	if n.k.Cfg.DistributedTCM {
		if n.summBuilder == nil || n.summBuilder.N() != len(n.k.threads) {
			n.summBuilder = tcm.NewBuilder(len(n.k.threads))
		} else {
			n.summBuilder.Reset()
		}
		bl := n.summBuilder
		entries := 0
		for _, r := range recs {
			bl.IngestRecord(r)
			entries += len(r.Entries)
			n.k.recycleRecord(r)
		}
		if t != nil {
			t.Charge(sim.Time(entries) * n.k.Cfg.Costs.TCMReorgCostPerEntry)
		}
		p.sum = bl.Summarize()
		p.wire = p.sum.WireBytes()
	} else {
		p.batch = &oal.Batch{Records: recs}
		p.wire = p.batch.WireBytes()
	}
	n.k.stats.OALWireBytes += int64(p.wire)
	return p
}

// flushOAL ships buffered records to the master in a dedicated jumbo
// message. The optional thread is charged packing CPU.
func (n *Node) flushOAL(t *Thread) {
	if !n.k.Cfg.TransferOALs {
		// Collection without transfer (Table II's O1 isolation): drop,
		// but still let the master learn entries locally at zero cost so
		// accuracy studies can run in-process.
		for _, r := range n.oalBuf {
			n.k.master.IngestLocal(r)
		}
		n.oalBuf = nil
		n.oalBufEntries = 0
		return
	}
	p := n.drainOAL(t)
	if p == nil {
		return
	}
	if t != nil && p.batch != nil {
		t.Charge(sim.Time(p.batch.NumEntries()) * n.k.Cfg.Costs.OALPackCostPerEntry)
	}
	if n.id == 0 {
		// Local delivery to the master collector.
		n.k.master.IngestPayload(p)
		return
	}
	if n.k.FailureEnabled() {
		n.sendFlush(p)
		return
	}
	n.k.Net.Send(network.NodeID(n.id), 0, network.CatOAL, p.wire,
		&protoMsg{kind: msgOALBatch, oal: p.batch, sum: p.sum})
}

// FlushAllOAL is called at end-of-run to drain any remaining records.
func (k *Kernel) FlushAllOAL() {
	for _, n := range k.nodes {
		n.flushOAL(nil)
	}
}

// payload extracts the message's OAL shipment, if any.
func (pm *protoMsg) payload() *oalPayload {
	if pm.oal == nil && pm.sum == nil {
		return nil
	}
	return &oalPayload{batch: pm.oal, sum: pm.sum}
}
