package gos

import (
	"jessica2/internal/heap"
	"jessica2/internal/oal"
	"jessica2/internal/sim"
	"jessica2/internal/tcm"
)

// Master is the correlation collector + analyzer daemon on the master JVM
// (node 0). It ingests OAL batches, reorganizes them into per-object thread
// lists and constructs correlation maps on demand. Its CPU cost is tracked
// separately because the paper runs the analyzer on a dedicated machine
// ("so that total execution time is not affected").
type Master struct {
	k       *Kernel
	builder *tcm.Builder

	ingestedRecords int64
	ingestedEntries int64
	reorgTime       sim.Time
	buildTime       sim.Time

	// homeAff accumulates thread×home-node shared volume — the "home
	// effect" input the paper's §VI says thread migration decisions need
	// ("objects shared by a pair of threads are homed at neither node of
	// the threads"). homeAff[t][n] is the logged bytes of objects homed at
	// node n that thread t accessed.
	homeAff map[int]map[int]float64
}

func newMaster(k *Kernel) *Master {
	return &Master{k: k}
}

func (m *Master) ensureBuilder() *tcm.Builder {
	if m.builder == nil {
		m.builder = tcm.NewBuilder(len(m.k.threads))
	}
	return m.builder
}

// Ingest consumes a batch arriving over the network (or locally on node 0).
func (m *Master) Ingest(b *oal.Batch) {
	if b == nil {
		return
	}
	for _, r := range b.Records {
		m.IngestLocal(r)
	}
}

// IngestSummary merges a worker-side per-object summary (distributed-TCM
// mode). Merging deduplicated summaries is cheaper than reorganizing raw
// records, which is the point of the §VI extension.
func (m *Master) IngestSummary(s *tcm.Summary) {
	if s == nil {
		return
	}
	bl := m.ensureBuilder()
	bl.IngestSummary(s)
	entries := 0
	for _, o := range s.Objs {
		entries += len(o.Threads)
		m.ingestedEntries += int64(len(o.Threads))
		for _, th := range o.Threads {
			m.accrueHome(int(th), heap.ObjectID(o.Key), o.Bytes)
		}
	}
	m.ingestedRecords++
	m.reorgTime += sim.Time(entries) * m.k.Cfg.Costs.TCMPairCost // merge is cheap
}

// IngestPayload dispatches on the shipment kind.
func (m *Master) IngestPayload(p *oalPayload) {
	if p == nil {
		return
	}
	m.Ingest(p.batch)
	m.IngestSummary(p.sum)
}

// IngestLocal consumes one record without any network path (used when OAL
// transfer is disabled but accuracy studies still need the data). Ownership
// of the record transfers to the kernel: it is recycled into the record pool
// after ingestion and must not be used by the caller afterwards.
func (m *Master) IngestLocal(r *oal.Record) {
	bl := m.ensureBuilder()
	bl.IngestRecord(r)
	m.ingestedRecords++
	m.ingestedEntries += int64(len(r.Entries))
	m.reorgTime += sim.Time(len(r.Entries)) * m.k.Cfg.Costs.TCMReorgCostPerEntry
	for _, e := range r.Entries {
		m.accrueHome(r.Thread, e.Obj, float64(e.Bytes))
	}
	m.k.recycleRecord(r)
}

// accrueHome adds one logged access into the thread×home matrix.
func (m *Master) accrueHome(thread int, id heap.ObjectID, bytes float64) {
	o := m.k.Reg.Object(id)
	if o == nil {
		return
	}
	if m.homeAff == nil {
		m.homeAff = make(map[int]map[int]float64)
	}
	row := m.homeAff[thread]
	if row == nil {
		row = make(map[int]float64)
		m.homeAff[thread] = row
	}
	row[o.Home] += bytes
}

// HomeAffinity exports the thread×node shared-volume matrix for the given
// dimensions (threads × nodes).
func (m *Master) HomeAffinity(threads, nodes int) [][]float64 {
	out := make([][]float64, threads)
	for t := range out {
		out[t] = make([]float64, nodes)
		for n, v := range m.homeAff[t] {
			if n >= 0 && n < nodes {
				out[t][n] = v
			}
		}
	}
	return out
}

// widen copies mp into an n×n map when the builder was sized before all
// threads spawned; a map already wide enough passes through.
func widen(mp *tcm.Map, n int) *tcm.Map {
	if mp.N() >= n {
		return mp
	}
	wide := tcm.NewMap(n)
	for i := 0; i < mp.N(); i++ {
		for j := i + 1; j < mp.N(); j++ {
			wide.Set(i, j, mp.At(i, j))
		}
	}
	return wide
}

// Build constructs the TCM for n threads from everything ingested, charging
// analyzer CPU for the accrual pass. The charge is the paper's simulated
// O(M·N²) reorganize-and-accrue cost (cost.Objects and the cumulative
// cost.PairAdds), which both builder variants report identically — the
// incremental default maintains the map online, so its *host-side* Build is
// O(1), but the simulated analyzer the ledger models still pays for the
// full pass.
func (m *Master) Build(n int) (*tcm.Map, tcm.BuildCost) {
	bl := m.ensureBuilder()
	mp, cost := bl.Build()
	m.buildTime += sim.Time(cost.PairAdds)*m.k.Cfg.Costs.TCMPairCost +
		sim.Time(cost.Objects)*m.k.Cfg.Costs.TCMReorgCostPerEntry
	return widen(mp, n), cost
}

// Peek builds the TCM from everything ingested so far WITHOUT charging
// analyzer CPU: a live-snapshot read that leaves the master's accounting
// exactly as a later charged Build would have found it. Observing a paused
// run must not change it.
func (m *Master) Peek(n int) *tcm.Map {
	return widen(m.ensureBuilder().Peek(), n)
}

// PeekInto is Peek with caller-owned scratch: the map is rebuilt in place
// of dst (nil allocates) and stays valid until the next call with the same
// scratch. Sessions peek at every epoch boundary; recycling one map per
// session keeps live snapshots off the allocator's hot path. When the
// builder was sized before all threads spawned, widening still copies into
// a fresh map (the rare, cold path).
func (m *Master) PeekInto(dst *tcm.Map, n int) *tcm.Map {
	return widen(m.ensureBuilder().PeekInto(dst), n)
}

// VisitNewlyShared streams objects observed as shared by at least two
// threads (ascending key order: key, current logged weight, ascending
// accessor ids — the threads slice is scratch valid only during the
// callback). Callers MUST dedupe across calls themselves (the session
// keeps a hotSeen set): the incremental builder narrows successive visits
// to the O(new) pending list — consume retires entries acknowledged with a
// true return, declined entries stay pending — but that narrowing is an
// optimization, not a delivery guarantee; the legacy `-tags tcmfull`
// builder re-scans all shared objects on every call and ignores
// consume/return. Like Peek, it never charges simulated analyzer CPU.
func (m *Master) VisitNewlyShared(consume bool, visit func(key int64, bytes float64, threads []int32) bool) {
	m.ensureBuilder().VisitNewlyShared(consume, visit)
}

// DecayThreads scales the given threads' accumulated correlations by
// factor — the failure detector's graceful-degradation hook when their
// node's lease expires. A documented no-op under `-tags tcmfull` (the
// legacy builder rebuilds from raw history, which cannot be retroactively
// discounted).
func (m *Master) DecayThreads(threads []int, factor float64) {
	m.ensureBuilder().DecayThreads(threads, factor)
}

// SeedMap pre-loads the analyzer's accumulator with a prior run's
// correlation map — the profile-guided warm start. Seeding is prior
// knowledge, not measurement: it charges no analyzer CPU and leaves the
// Build cost ledger untouched. A documented no-op under `-tags tcmfull`
// (the legacy builder rebuilds from raw per-object history, which seeded
// pair-level volume cannot join), mirroring DecayThreads.
func (m *Master) SeedMap(mp *tcm.Map) {
	m.ensureBuilder().SeedMap(mp)
}

// ResetWindow clears ingested state for a fresh profiling window.
func (m *Master) ResetWindow() {
	if m.builder != nil {
		m.builder.Reset()
	}
}

// ComputeTime is the analyzer CPU consumed so far (reorg + accrual).
func (m *Master) ComputeTime() sim.Time { return m.reorgTime + m.buildTime }

// ReorgTime is the OAL-reorganization component of ComputeTime.
func (m *Master) ReorgTime() sim.Time { return m.reorgTime }

// BuildTime is the TCM-accrual component of ComputeTime.
func (m *Master) BuildTime() sim.Time { return m.buildTime }

// IngestedEntries reports how many OAL entries reached the daemon.
func (m *Master) IngestedEntries() int64 { return m.ingestedEntries }

// Summary exports the daemon's per-object state (input for home-migration
// advice and hierarchical reductions).
func (m *Master) Summary() *tcm.Summary { return m.ensureBuilder().Summarize() }
