package gos

import (
	"fmt"

	"jessica2/internal/heap"
	"jessica2/internal/network"
	"jessica2/internal/oal"
	"jessica2/internal/sim"
	"jessica2/internal/stack"
)

// Thread is a distributed-JVM thread: it executes on one node (until
// migrated), opens and closes HLRC intervals at synchronization points, and
// funnels every shared-object access through the inlined state-check path
// where correlation logging happens.
type Thread struct {
	k    *Kernel
	id   int
	name string
	node *Node
	proc *sim.Proc

	// Stack is the shadow Java stack used by the stack profiler.
	Stack *stack.ThreadStack

	interval     int64
	intervalOpen bool
	closing      bool // inside closeInterval (observer callbacks still see the interval's state)
	pc           int64
	startPC      int64

	accessed      map[heap.ObjectID]*accessInfo
	accessedOrder []heap.ObjectID
	rec           *oal.Record
	lastLogged    []heap.ObjectID

	// diffBytes/diffHomes are interval-close scratch: per-home-node diff
	// payload accumulation reused across intervals.
	diffBytes []int
	diffHomes []int

	pendingCPU sim.Time
	finished   bool
	finishedAt sim.Time

	// safePointFn, when set, runs on the thread's own proc at its next
	// safe point (the top of its next shared access, before the interval
	// state is touched). It is the injection mechanism for externally
	// requested thread migrations: the closed-loop session decides at an
	// epoch boundary, the thread acts when it reaches a point where its
	// context is capturable.
	safePointFn func(*Thread)

	stats ThreadStats
}

// ThreadStats are per-thread counters.
type ThreadStats struct {
	Accesses      int64
	Faults        int64
	FaultBytes    int64
	Logged        int64
	ComputeTime   sim.Time
	FaultWaitTime sim.Time
	Migrations    int64
}

// accessInfo tracks one object within the current interval. It caches the
// node's copy header so the per-access fast path costs one map lookup.
// Entries persist in the thread's accessed map across intervals and are
// revived in place when their interval stamp is stale, so the steady-state
// access path allocates nothing.
type accessInfo struct {
	// interval stamps which interval the counters belong to; a stale stamp
	// means the entry is logically absent from the current interval.
	interval      int64
	reads, writes int
	writtenBytes  int
	logged        bool
	copy          *copyState
}

// SpawnThread creates a DJVM thread with global id len(threads) running
// body on the given node. The body runs as a simulation proc; when it
// returns, the thread's final interval is closed and buffered OALs flush.
func (k *Kernel) SpawnThread(node int, name string, body func(*Thread)) *Thread {
	if node < 0 || node >= len(k.nodes) {
		panic(fmt.Sprintf("gos: bad node %d", node))
	}
	k.startFailureDetector() // idempotent; no-op when Cfg.Failure is nil
	t := &Thread{
		k:        k,
		id:       len(k.threads),
		name:     name,
		node:     k.nodes[node],
		accessed: make(map[heap.ObjectID]*accessInfo),
		Stack:    stack.NewThreadStack(),
	}
	k.threads = append(k.threads, t)
	t.proc = k.Eng.Spawn(name, func(p *sim.Proc) {
		body(t)
		t.closeInterval()
		t.flushCPU()
		t.finished = true
		t.finishedAt = p.Now()
	})
	return t
}

// FinishedAt returns the virtual time the thread body returned.
func (t *Thread) FinishedAt() sim.Time { return t.finishedAt }

// ID returns the global thread id.
func (t *Thread) ID() int { return t.id }

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// Node returns the node the thread currently executes on.
func (t *Thread) Node() *Node { return t.node }

// Kernel returns the owning kernel.
func (t *Thread) Kernel() *Kernel { return t.k }

// Proc exposes the simulation process (for advanced scheduling).
func (t *Thread) Proc() *sim.Proc { return t.proc }

// Stats returns a snapshot of the thread counters.
func (t *Thread) Stats() ThreadStats { return t.stats }

// Interval returns the current interval sequence number.
func (t *Thread) Interval() int64 { return t.interval }

// PC returns the thread's logical program counter.
func (t *Thread) PC() int64 { return t.pc }

// Finished reports whether the thread body has returned.
func (t *Thread) Finished() bool { return t.finished }

// AccessedThisInterval reports reads/writes of o in the open interval.
func (t *Thread) AccessedThisInterval(o *heap.Object) (reads, writes int) {
	if ai := t.accessed[o.ID]; ai != nil && ai.interval == t.interval && (t.intervalOpen || t.closing) {
		return ai.reads, ai.writes
	}
	return 0, 0
}

// Charge accrues d of CPU work; it is flushed to the node CPU resource in
// slices to keep the event count manageable.
func (t *Thread) Charge(d sim.Time) {
	t.pendingCPU += d
	if t.pendingCPU >= t.k.Cfg.CPUSliceFlush {
		t.flushCPU()
	}
}

// Compute models pure application computation of duration d.
func (t *Thread) Compute(d sim.Time) { t.Charge(d) }

// Now returns the thread's accurate virtual time: pending CPU is flushed
// first, so the clock includes all work charged so far. Open-loop workloads
// use this to timestamp request completions.
func (t *Thread) Now() sim.Time {
	t.flushCPU()
	return t.proc.Now()
}

// SleepUntil parks the thread until absolute virtual time at (a no-op if at
// is already past after flushing pending CPU). Open-loop workloads use this
// to idle until the next scheduled request arrival; unlike Compute time,
// the wait charges no CPU.
func (t *Thread) SleepUntil(at sim.Time) {
	t.flushCPU()
	if d := at - t.proc.Now(); d > 0 {
		t.proc.Sleep(d)
	}
}

func (t *Thread) flushCPU() {
	if t.pendingCPU <= 0 {
		return
	}
	d := t.pendingCPU
	t.pendingCPU = 0
	t.proc.Use(t.node.cpu, d)
	t.stats.ComputeTime += d
}

// --- interval lifecycle ----------------------------------------------------

func (t *Thread) openInterval() {
	if t.intervalOpen {
		return
	}
	t.interval++
	t.intervalOpen = true
	t.startPC = t.pc
	t.rec = t.k.newRecord()
	t.rec.Thread = t.id
	t.rec.Node = t.node.id
	t.rec.Interval = t.interval
	t.rec.StartPC = t.startPC
	t.k.stats.Intervals++
	// Reset false-invalid on the objects this thread logged last interval
	// ("reset to false-invalid state to enable tracking on them
	// regardless of their real status"). Only sampled objects — the OAL
	// from last interval contains exactly those.
	if t.k.Cfg.Tracking == TrackingSampled {
		var resetCost sim.Time
		for _, id := range t.lastLogged {
			c := t.node.copyAt(id)
			if c == nil {
				continue // moved node; copies stay behind
			}
			if c.obj.Sampled() {
				c.falseInvalid = true
				t.k.stats.Resets++
				resetCost += t.k.Cfg.Costs.ResetCost
			}
		}
		if resetCost > 0 {
			t.Charge(resetCost)
		}
	}
}

// closeInterval flushes diffs for dirtied objects, finalizes the OAL record
// and hands it to the node's buffer.
func (t *Thread) closeInterval() {
	if !t.intervalOpen {
		return
	}
	t.intervalOpen = false
	t.closing = true
	cost := t.k.Cfg.Costs

	// Propagate diffs of written non-home objects to their homes, batched
	// per home node. The per-home byte accumulator is a reused per-thread
	// scratch table so interval close allocates nothing at steady state.
	if len(t.diffBytes) < t.k.NumNodes() {
		t.diffBytes = make([]int, t.k.NumNodes())
	}
	t.diffHomes = t.diffHomes[:0]
	var diffCPU sim.Time
	for _, id := range t.accessedOrder {
		ai := t.accessed[id]
		if ai.writes == 0 {
			continue
		}
		o := t.k.Reg.MustObject(id)
		wb := ai.writtenBytes
		if wb <= 0 || wb > o.Bytes() {
			wb = o.Bytes()
		}
		diffCPU += sim.Time(wb) * cost.DiffCostPerByte
		// Commit the update: home writes commit in place; remote writes
		// advance the home version synchronously while the diff message
		// below models the traffic and latency. The writer's own copy
		// stays valid at the new version (it holds the data it wrote).
		t.k.bumpVersion(id)
		if c := t.node.copyAt(id); c != nil && c.valid {
			c.version = t.k.version(id)
		}
		if o.Home == t.node.id {
			continue
		}
		if t.diffBytes[o.Home] == 0 {
			t.diffHomes = append(t.diffHomes, o.Home)
		}
		t.diffBytes[o.Home] += wb + 8 // per-object diff header
		// The twin is discarded after diffing.
		if c := t.node.copyAt(id); c != nil {
			c.hasTwin = false
		}
	}
	if diffCPU > 0 {
		t.Charge(diffCPU)
	}
	for _, home := range t.diffHomes {
		bytes := t.diffBytes[home]
		t.diffBytes[home] = 0
		t.k.stats.DiffBytes += int64(bytes)
		t.k.stats.DiffMessages++
		t.k.Net.Send(network.NodeID(t.node.id), network.NodeID(home),
			network.CatGOSData, bytes, &protoMsg{kind: msgDiff})
	}

	// Finalize the OAL record.
	t.rec.EndPC = t.pc
	t.lastLogged = t.lastLogged[:0]
	for _, e := range t.rec.Entries {
		t.lastLogged = append(t.lastLogged, e.Obj)
	}
	if t.k.Cfg.Tracking != TrackingOff {
		t.node.bufferOAL(t.rec)
	} else {
		t.k.recycleRecord(t.rec)
	}
	t.rec = nil

	for _, obs := range t.k.observers {
		obs.OnIntervalClose(t)
	}

	// Reset per-interval access state. Entries stay in the accessed map
	// with a now-stale interval stamp; the next interval revives them in
	// place instead of reallocating.
	t.accessedOrder = t.accessedOrder[:0]
	t.closing = false
}

// --- the access path -------------------------------------------------------

// Read models a read access to o.
func (t *Thread) Read(o *heap.Object) { t.access(o, false, 0) }

// Write models a write access that dirties the whole object.
func (t *Thread) Write(o *heap.Object) { t.access(o, true, o.Bytes()) }

// WriteBytes models a partial write of n bytes (e.g. one array section).
func (t *Thread) WriteBytes(o *heap.Object, n int) { t.access(o, true, n) }

// ReadElems / WriteElems are conveniences for array workloads.
func (t *Thread) ReadElems(o *heap.Object, elems int) { t.access(o, false, 0) }

// WriteElems dirties elems elements of array o.
func (t *Thread) WriteElems(o *heap.Object, elems int) {
	t.access(o, true, elems*o.Class.ElemSize)
}

// AtSafePoint schedules fn to run on the thread's own proc at its next
// safe point — the top of its next shared-object access, before any
// interval state is touched, where the thread's portable context can be
// captured and shipped (fn may call migration primitives that block the
// proc, such as MoveTo). A later request before the safe point is reached
// replaces an earlier one. No-op on finished threads.
func (t *Thread) AtSafePoint(fn func(*Thread)) {
	if t.finished {
		return
	}
	t.safePointFn = fn
}

// access is the JIT-inlined object state check path.
func (t *Thread) access(o *heap.Object, write bool, writtenBytes int) {
	if fn := t.safePointFn; fn != nil {
		t.safePointFn = nil
		fn(t)
	}
	t.openInterval()
	t.pc++
	t.stats.Accesses++
	t.k.stats.Checks++
	cost := t.k.Cfg.Costs
	t.Charge(cost.CheckCost)

	ai := t.accessed[o.ID]
	n := t.node
	first := ai == nil || ai.interval != t.interval
	if ai == nil {
		ai = &accessInfo{interval: t.interval, copy: n.copyOf(o)}
		t.accessed[o.ID] = ai
		t.accessedOrder = append(t.accessedOrder, o.ID)
	} else if ai.interval != t.interval {
		// Revive a stale entry in place, keeping the cached copy header
		// (invalidated only by migration, which clears the whole map).
		*ai = accessInfo{interval: t.interval, copy: ai.copy}
		t.accessedOrder = append(t.accessedOrder, o.ID)
	}
	if write {
		ai.writes++
		ai.writtenBytes += writtenBytes
	} else {
		ai.reads++
	}

	c := ai.copy
	if c.version == 0 && c.valid && o.Home == n.id {
		// Fresh home copy: seed tracking on creation ("each object is
		// given a tag ... upon its creation").
		if t.k.Cfg.Tracking == TrackingSampled && o.Sampled() && !c.falseInvalid && c.checkedEpoch == 0 {
			c.falseInvalid = true
			c.checkedEpoch = -1 // sentinel: seeded
		}
	}

	// Lazy write-notice application: at the first touch in a new sync
	// epoch, compare the fetched version against the home version.
	if o.Home != n.id && c.checkedEpoch < n.epoch {
		c.checkedEpoch = n.epoch
		if c.valid && c.version < t.k.version(o.ID) {
			c.valid = false
		}
	}

	if !c.valid {
		t.fault(o, c)
		t.maybeLog(o, ai, write)
	} else if c.falseInvalid {
		// Correlation fault: the state check sees "invalid", traps into
		// the GOS service routine, which logs and cancels the fake state.
		c.falseInvalid = false
		t.k.stats.FalseInvalidHit++
		t.maybeLog(o, ai, write)
	} else {
		n.localHits++
	}

	if t.k.Cfg.Tracking == TrackingExact && first {
		t.logExact(o, ai, write)
	}

	if write && o.Home != n.id && !c.hasTwin {
		c.hasTwin = true
		t.Charge(sim.Time(o.Bytes()) * cost.TwinCostPerByte)
	}

	for _, obs := range t.k.observers {
		obs.OnAccess(t, o, write, first)
	}
}

// fault brings the latest copy from the object's home (a remote roundtrip)
// or revalidates a stale home copy (never happens for true homes — home
// copies are always valid — but kept for safety).
func (t *Thread) fault(o *heap.Object, c *copyState) {
	cost := t.k.Cfg.Costs
	t.Charge(cost.FaultCPUCost)
	t.flushCPU() // blocking: release the CPU while waiting
	tok := t.node.newToken(t)
	t.k.Net.Send(network.NodeID(t.node.id), network.NodeID(o.Home),
		network.CatControl, 32, &protoMsg{kind: msgFetchReq, tok: tok, obj: o.ID})
	wait0 := t.proc.Now()
	t.proc.Block("fault " + o.Class.Name)
	t.stats.FaultWaitTime += t.proc.Now() - wait0
	c.valid = true
	c.version = t.k.version(o.ID)
	c.falseInvalid = false
	t.stats.Faults++
	t.stats.FaultBytes += int64(o.Bytes())
	t.k.stats.Faults++
	t.k.stats.FaultBytes += int64(o.Bytes())
}

// maybeLog appends an OAL entry for a sampled object, at most once per
// thread-interval.
func (t *Thread) maybeLog(o *heap.Object, ai *accessInfo, write bool) {
	if t.k.Cfg.Tracking != TrackingSampled || ai.logged {
		return
	}
	gap := o.Class.Gap()
	if gap <= 0 || !o.Sampled() {
		return
	}
	ai.logged = true
	t.Charge(t.k.Cfg.Costs.LogCost)
	// Scaled estimator: amortized sample size × gap, so sampled maps
	// estimate the full-population shared volume.
	bytes := int64(o.AmortizedBytes()) * gap
	t.rec.Entries = append(t.rec.Entries, oal.Entry{Obj: o.ID, Bytes: bytes, Write: write})
	t.stats.Logged++
	t.k.stats.CorrelationLogs++
}

// logExact is the oracle logging mode.
func (t *Thread) logExact(o *heap.Object, ai *accessInfo, write bool) {
	if ai.logged {
		return
	}
	ai.logged = true
	t.rec.Entries = append(t.rec.Entries, oal.Entry{Obj: o.ID, Bytes: int64(o.Bytes()), Write: write})
	t.stats.Logged++
	t.k.stats.CorrelationLogs++
}

// --- allocation ------------------------------------------------------------

// Alloc creates a scalar object homed at the thread's current node.
func (t *Thread) Alloc(c *heap.Class) *heap.Object {
	return t.k.Reg.Alloc(c, t.node.id)
}

// AllocArray creates an array homed at the thread's current node.
func (t *Thread) AllocArray(c *heap.Class, n int) *heap.Object {
	return t.k.Reg.AllocArray(c, n, t.node.id)
}

// --- migration support -----------------------------------------------------

// MoveTo transfers the thread to another node, blocking for the transfer of
// payloadBytes (stack context plus any prefetched sticky set). The caller
// (package migration) computes the payload and installs prefetched copies.
func (t *Thread) MoveTo(nodeID int, payloadBytes int) {
	if nodeID == t.node.id {
		return
	}
	t.closeInterval()
	t.flushCPU()
	from := t.node
	target := t.k.nodes[nodeID]
	tok := from.newToken(t)
	self := t
	t.k.Net.Send(network.NodeID(from.id), network.NodeID(nodeID),
		network.CatMigration, payloadBytes,
		&protoMsg{kind: msgMigrateIn, data: func() {
			from.completePending(tok)
		}})
	t.proc.Block("migrate")
	t.node = target
	// The cached copy headers in the accessed map belong to the old node;
	// drop them so accesses on the new node resolve fresh ones.
	clear(t.accessed)
	t.accessedOrder = t.accessedOrder[:0]
	self.stats.Migrations++
}

// InstallPrefetched marks objs valid in node's cache at current home
// versions — the sticky set arriving with a migrated thread.
func (k *Kernel) InstallPrefetched(nodeID int, objs []*heap.Object) {
	n := k.nodes[nodeID]
	for _, o := range objs {
		c := n.copyOf(o)
		c.valid = true
		c.version = k.version(o.ID)
		c.checkedEpoch = n.epoch
	}
}
