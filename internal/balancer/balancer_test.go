package balancer

import (
	"math"
	"testing"
	"testing/quick"

	"jessica2/internal/tcm"
)

// pairMap builds a TCM where threads 2k and 2k+1 share volume v.
func pairMap(n int, v float64) *tcm.Map {
	m := tcm.NewMap(n)
	for i := 0; i+1 < n; i += 2 {
		m.Set(i, i+1, v)
	}
	return m
}

func TestCrossLocalComplementary(t *testing.T) {
	m := pairMap(8, 100)
	a := RoundRobin(8, 4)
	total := 0.0
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			total += m.At(i, j)
		}
	}
	if got := CrossVolume(m, a) + LocalVolume(m, a); math.Abs(got-total) > 1e-9 {
		t.Fatalf("cross+local = %v, want %v", got, total)
	}
}

func TestPlanReunitesPairs(t *testing.T) {
	m := pairMap(8, 100)
	// Round-robin splits every pair across 4 nodes.
	cur := RoundRobin(8, 4)
	if CrossVolume(m, cur) == 0 {
		t.Fatal("test setup wrong: pairs should start split")
	}
	next, moves := Plan(m, cur, Config{Nodes: 4, Slack: 1, MaxMoves: 16, MinGain: 1})
	if CrossVolume(m, next) != 0 {
		t.Fatalf("cross volume %v after planning, want 0", CrossVolume(m, next))
	}
	if len(moves) == 0 {
		t.Fatal("no moves planned")
	}
	// Load constraint: ceil(8/4)+1 = 3 max.
	for node, c := range next.Counts(4) {
		if c > 3 {
			t.Fatalf("node %d overloaded with %d threads", node, c)
		}
	}
}

func TestPlanRespectsMaxMoves(t *testing.T) {
	m := pairMap(16, 50)
	cur := RoundRobin(16, 4)
	_, moves := Plan(m, cur, Config{Nodes: 4, Slack: 1, MaxMoves: 2, MinGain: 1})
	if len(moves) > 2 {
		t.Fatalf("planned %d moves, cap was 2", len(moves))
	}
}

func TestPlanMinGainBlocksChurn(t *testing.T) {
	m := pairMap(4, 10)
	cur := RoundRobin(4, 2)
	_, moves := Plan(m, cur, Config{Nodes: 2, Slack: 1, MaxMoves: 8, MinGain: 1000})
	if len(moves) != 0 {
		t.Fatalf("moves planned below the gain threshold: %v", moves)
	}
}

func TestPlanMoveCostWeighsAgainst(t *testing.T) {
	m := pairMap(4, 10)
	cur := RoundRobin(4, 2)
	_, moves := Plan(m, cur, Config{Nodes: 2, Slack: 1, MaxMoves: 8, MinGain: 1, MoveCostBytes: 100})
	if len(moves) != 0 {
		t.Fatal("migration cost should have vetoed the moves")
	}
}

func TestPlanNeverWorsens(t *testing.T) {
	m := pairMap(8, 100)
	m.Add(0, 2, 30)
	m.Add(1, 3, 20)
	cur := Blocked(8, 4)
	before := CrossVolume(m, cur)
	next, _ := Plan(m, cur, DefaultConfig(4))
	after := CrossVolume(m, next)
	if after > before {
		t.Fatalf("plan worsened cross volume: %v -> %v", before, after)
	}
}

func TestPlanDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatch did not panic")
		}
	}()
	Plan(tcm.NewMap(4), make(Assignment, 3), DefaultConfig(2))
}

func TestInitialPlacementClusters(t *testing.T) {
	m := pairMap(8, 100)
	a := InitialPlacement(m, Config{Nodes: 4})
	for i := 0; i+1 < 8; i += 2 {
		if a[i] != a[i+1] {
			t.Fatalf("pair (%d,%d) split by initial placement: %v", i, i+1, a)
		}
	}
	counts := a.Counts(4)
	for n, c := range counts {
		if c != 2 {
			t.Fatalf("node %d has %d threads, want 2: %v", n, c, a)
		}
	}
}

func TestBlockedAndRoundRobin(t *testing.T) {
	b := Blocked(8, 4)
	want := Assignment{0, 0, 1, 1, 2, 2, 3, 3}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("blocked = %v", b)
		}
	}
	rr := RoundRobin(8, 4)
	for i := range rr {
		if rr[i] != i%4 {
			t.Fatalf("round robin = %v", rr)
		}
	}
}

func TestBlockedUnevenClamps(t *testing.T) {
	b := Blocked(5, 2)
	for _, n := range b {
		if n < 0 || n >= 2 {
			t.Fatalf("out of range node: %v", b)
		}
	}
}

func TestAssignmentClone(t *testing.T) {
	a := Assignment{1, 2, 3}
	c := a.Clone()
	c[0] = 9
	if a[0] != 1 {
		t.Fatal("clone aliases")
	}
}

func TestSummaryRenders(t *testing.T) {
	s := Summary(Assignment{0, 1, 0}, 2)
	if len(s) == 0 {
		t.Fatal("empty summary")
	}
}

// Property: cross + local volume is invariant under any assignment.
func TestQuickVolumeConservation(t *testing.T) {
	f := func(cells [6]uint8, placement [4]uint8) bool {
		m := tcm.NewMap(4)
		k := 0
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				m.Set(i, j, float64(cells[k]))
				k++
			}
		}
		a := make(Assignment, 4)
		for i := range a {
			a[i] = int(placement[i]) % 2
		}
		var total float64
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				total += m.At(i, j)
			}
		}
		return math.Abs(CrossVolume(m, a)+LocalVolume(m, a)-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Plan's result always satisfies the load constraint.
func TestQuickPlanLoadConstraint(t *testing.T) {
	f := func(cells [15]uint8) bool {
		m := tcm.NewMap(6)
		k := 0
		for i := 0; i < 6; i++ {
			for j := i + 1; j < 6; j++ {
				m.Set(i, j, float64(cells[k]))
				k++
			}
		}
		cur := RoundRobin(6, 3)
		next, _ := Plan(m, cur, Config{Nodes: 3, Slack: 0, MaxMoves: 10, MinGain: 1})
		maxPer := 2 // ceil(6/3) + 0 slack
		for _, c := range next.Counts(3) {
			if c > maxPer {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestHomeAwarePlan: the home-affinity term pulls a thread toward the node
// hosting its data even without peer-thread attraction — the §VI "home
// effect" extension.
func TestHomeAwarePlan(t *testing.T) {
	m := tcm.NewMap(4) // no thread-pair correlation at all
	aff := [][]float64{
		{0, 5000}, // thread 0's data homed on node 1
		{0, 0},
		{0, 0},
		{0, 0},
	}
	cur := Assignment{0, 0, 1, 1}
	next, moves := Plan(m, cur, Config{Nodes: 2, Slack: 1, MaxMoves: 4, MinGain: 1,
		HomeAffinity: aff, HomeWeight: 1})
	if next[0] != 1 {
		t.Fatalf("thread 0 not pulled to its data's home: %v (moves %v)", next, moves)
	}
}

// TestHomeAwareThirdNodeCase: the paper's tricky case — a pair shares data
// homed at a third node. With the home term, the planner prefers moving
// both threads to the data's home over merely collocating them.
func TestHomeAwareThirdNodeCase(t *testing.T) {
	m := tcm.NewMap(2)
	m.Set(0, 1, 100) // the pair shares a little directly
	aff := [][]float64{
		{0, 0, 4000}, // but both threads' shared data is homed on node 2
		{0, 0, 4000},
	}
	cur := Assignment{0, 1}
	next, _ := Plan(m, cur, Config{Nodes: 3, Slack: 2, MaxMoves: 4, MinGain: 1,
		HomeAffinity: aff, HomeWeight: 1})
	if next[0] != 2 || next[1] != 2 {
		t.Fatalf("pair not moved to the data home: %v", next)
	}
	// Without the home term they would just collocate anywhere.
	blind, _ := Plan(m, cur, Config{Nodes: 3, Slack: 2, MaxMoves: 4, MinGain: 1})
	if blind[0] == 2 && blind[1] == 2 {
		t.Skip("blind plan coincidentally chose node 2")
	}
}
