// Package balancer implements the global load balancer the paper's
// profiling output feeds ("the profiling results can be exploited for
// effective thread-to-core placement and dynamic load balancing"). Given a
// thread correlation map and per-thread sticky-set footprints, it computes
// thread placements that maximize collocated sharing subject to a load
// balance constraint, and migration plans that weigh the locality gain of a
// move against its cost (context + sticky-set transfer) — the paper's §V
// future-work policy, built out as an extension.
package balancer

import (
	"fmt"
	"sort"

	"jessica2/internal/tcm"
)

// Assignment maps thread id to node id.
type Assignment []int

// Clone copies the assignment.
func (a Assignment) Clone() Assignment { return append(Assignment(nil), a...) }

// Counts returns per-node thread counts.
func (a Assignment) Counts(nodes int) []int {
	c := make([]int, nodes)
	for _, n := range a {
		c[n]++
	}
	return c
}

// CrossVolume is the total correlation volume between threads on different
// nodes — the communication the placement pays for.
func CrossVolume(m *tcm.Map, a Assignment) float64 {
	var v float64
	for i := 0; i < m.N(); i++ {
		for j := i + 1; j < m.N(); j++ {
			if a[i] != a[j] {
				v += m.At(i, j)
			}
		}
	}
	return v
}

// LocalVolume is the collocated correlation volume.
func LocalVolume(m *tcm.Map, a Assignment) float64 {
	var v float64
	for i := 0; i < m.N(); i++ {
		for j := i + 1; j < m.N(); j++ {
			if a[i] == a[j] {
				v += m.At(i, j)
			}
		}
	}
	return v
}

// Config tunes the planner.
type Config struct {
	// Nodes is the cluster size.
	Nodes int
	// Slack is how many threads above the floor average a node may hold
	// (load-balance constraint; 0 forces near-perfect balance).
	Slack int
	// MaxMoves caps the number of migrations in one plan (each migration
	// has real cost; the paper warns against thread thrashing).
	MaxMoves int
	// MinGain is the minimum cross-volume reduction (bytes) to justify a
	// move; combined with MoveCostBytes it implements the paper's
	// gain-vs-footprint weighing.
	MinGain float64
	// MoveCostBytes charges each move a fixed byte-equivalent cost
	// (context size plus expected sticky-set transfer).
	MoveCostBytes float64
	// HomeAffinity, when non-nil, is the thread×node matrix of shared
	// volume with objects homed per node (gos.Master.HomeAffinity). It
	// supplies the "home effect" the paper's §VI calls for: moving a
	// thread toward the homes of its data is a gain even when its peer
	// threads live elsewhere — and collocating a thread pair is worthless
	// if their shared objects are homed at a third node.
	HomeAffinity [][]float64
	// HomeWeight scales the home-affinity term against the thread-pair
	// term (0 disables; 1 weighs a byte homed right equal to a byte
	// collocated).
	HomeWeight float64
}

// DefaultConfig returns a conservative planner.
func DefaultConfig(nodes int) Config {
	return Config{Nodes: nodes, Slack: 1, MaxMoves: 8, MinGain: 1, MoveCostBytes: 0}
}

// Move is one planned migration.
type Move struct {
	Thread int
	From   int
	To     int
	Gain   float64 // cross-volume reduction in bytes
}

func (m Move) String() string {
	return fmt.Sprintf("T%d: node%d→node%d (gain %.0f B)", m.Thread, m.From, m.To, m.Gain)
}

// Plan improves the current assignment by greedy best-move iteration: at
// each step it evaluates every (thread, node) relocation that keeps the
// load constraint and picks the one with the largest cross-volume
// reduction, until no move clears MinGain + MoveCostBytes or MaxMoves is
// reached.
func Plan(m *tcm.Map, current Assignment, cfg Config) (Assignment, []Move) {
	if cfg.Nodes <= 0 {
		panic("balancer: config needs Nodes")
	}
	n := m.N()
	if len(current) != n {
		panic(fmt.Sprintf("balancer: assignment size %d != map dim %d", len(current), n))
	}
	a := current.Clone()
	counts := a.Counts(cfg.Nodes)
	maxPerNode := (n+cfg.Nodes-1)/cfg.Nodes + cfg.Slack
	var moves []Move
	if cfg.MaxMoves <= 0 {
		cfg.MaxMoves = n
	}

	// attraction[t][d] = correlation volume between thread t and threads
	// currently on node d, plus the weighted volume of t's data homed at d.
	attraction := func(t, d int) float64 {
		var v float64
		for u := 0; u < n; u++ {
			if u != t && a[u] == d {
				v += m.At(t, u)
			}
		}
		if cfg.HomeWeight > 0 && cfg.HomeAffinity != nil && t < len(cfg.HomeAffinity) {
			row := cfg.HomeAffinity[t]
			if d < len(row) {
				v += cfg.HomeWeight * row[d]
			}
		}
		return v
	}

	for len(moves) < cfg.MaxMoves {
		best := Move{Gain: 0}
		found := false
		for t := 0; t < n; t++ {
			from := a[t]
			here := attraction(t, from)
			for d := 0; d < cfg.Nodes; d++ {
				if d == from || counts[d] >= maxPerNode {
					continue
				}
				gain := attraction(t, d) - here
				if gain > best.Gain {
					best = Move{Thread: t, From: from, To: d, Gain: gain}
					found = true
				}
			}
		}
		if !found || best.Gain < cfg.MinGain+cfg.MoveCostBytes {
			break
		}
		a[best.Thread] = best.To
		counts[best.From]--
		counts[best.To]++
		moves = append(moves, best)
	}
	return a, moves
}

// InitialPlacement clusters threads onto nodes from scratch: it repeatedly
// seeds a node with the unplaced thread having the largest total
// correlation and greedily pulls in its strongest partners until the node
// reaches capacity. This approximates the costzone-style locality grouping
// the paper cites.
func InitialPlacement(m *tcm.Map, cfg Config) Assignment {
	n := m.N()
	a := make(Assignment, n)
	for i := range a {
		a[i] = -1
	}
	capacity := (n + cfg.Nodes - 1) / cfg.Nodes
	placed := 0
	node := 0
	for placed < n && node < cfg.Nodes {
		// Seed: unplaced thread with max total volume.
		seed, bestVol := -1, -1.0
		for t := 0; t < n; t++ {
			if a[t] != -1 {
				continue
			}
			var v float64
			for u := 0; u < n; u++ {
				v += m.At(t, u)
			}
			if v > bestVol {
				bestVol, seed = v, t
			}
		}
		a[seed] = node
		placed++
		for count := 1; count < capacity && placed < n; count++ {
			// Pull the unplaced thread most attracted to this node.
			best, bestAtt := -1, -1.0
			for t := 0; t < n; t++ {
				if a[t] != -1 {
					continue
				}
				var att float64
				for u := 0; u < n; u++ {
					if a[u] == node {
						att += m.At(t, u)
					}
				}
				if att > bestAtt {
					bestAtt, best = att, t
				}
			}
			a[best] = node
			placed++
		}
		node++
	}
	// Anything left (shouldn't happen) goes round-robin.
	for t := 0; t < n; t++ {
		if a[t] == -1 {
			a[t] = t % cfg.Nodes
		}
	}
	return a
}

// RoundRobin is the locality-oblivious baseline placement.
func RoundRobin(threads, nodes int) Assignment {
	a := make(Assignment, threads)
	for i := range a {
		a[i] = i % nodes
	}
	return a
}

// Blocked places contiguous thread ranges per node (the typical DJVM
// spawn-order placement).
func Blocked(threads, nodes int) Assignment {
	a := make(Assignment, threads)
	per := (threads + nodes - 1) / nodes
	for i := range a {
		a[i] = i / per
		if a[i] >= nodes {
			a[i] = nodes - 1
		}
	}
	return a
}

// Summary renders an assignment as node→threads lists for reports.
func Summary(a Assignment, nodes int) string {
	groups := make([][]int, nodes)
	for t, d := range a {
		groups[d] = append(groups[d], t)
	}
	out := ""
	for d := 0; d < nodes; d++ {
		sort.Ints(groups[d])
		out += fmt.Sprintf("node%d: %v\n", d, groups[d])
	}
	return out
}
