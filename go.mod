module jessica2

go 1.24
