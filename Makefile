# BENCH is the djvmbench JSON artifact path; override per PR:
#   make bench BENCH=BENCH_2.json
BENCH ?= BENCH_current.json
# SCALE divides the paper datasets (1 = paper scale, 8 = CI-friendly).
SCALE ?= 8

.PHONY: verify build vet test test-race test-tcmfull test-chaos test-serve test-overload test-profile test-dispatch bench bench-seq demo-closedloop demo-serve clean

verify: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# test-race reruns the suite under the race detector (CI's second job);
# it also re-executes the golden-trace determinism tests.
test-race:
	go test -race ./...

# test-chaos is the failure-injection gauntlet: the golden determinism
# suite under the crash/flaky/partition presets with and without the
# recovery layer (same-seed runs must stay byte-identical under failure
# injection), the injection-off byte-identity gate (reports unchanged when
# no failure events are configured), and the Figure R resilience assertion
# (recovery must strictly beat no-recovery and one-shot placement on every
# crash schedule) — all with the race detector on the test half.
test-chaos:
	go test -race -count=1 -run 'Chaos|InjectionDisabled|GoldenTrace|FigR|Failure|Flush|Lease|Heartbeat|Fuzz|Crash|Intercept|Shaper' . ./internal/gos/ ./internal/experiments/ ./internal/scenario/ ./internal/network/ ./internal/dispatch/
	go run ./cmd/djvmbench -figR -scale $(SCALE)

# test-dispatch is the distributed-dispatcher gauntlet: the wire-codec
# round-trip and typed-error tests, the lease-fencing and failure-injection
# suite (hung worker, restarted worker, corrupt results, fleet death), the
# loopback identity gate (a dispatched batch must be byte-identical to the
# sequential baseline), and the SIGKILL chaos test over real worker
# processes — all under the race detector — then a djvmbench -workers smoke
# against two local djvmworker processes with output byte-compared to the
# local run.
test-dispatch:
	go test -race -count=1 ./internal/dispatch/
	go build -o /tmp/j2_djvmworker ./cmd/djvmworker
	set -e; \
	/tmp/j2_djvmworker -listen 127.0.0.1:0 -quiet > /tmp/j2_w1.addr & P1=$$!; \
	/tmp/j2_djvmworker -listen 127.0.0.1:0 -quiet > /tmp/j2_w2.addr & P2=$$!; \
	trap "kill $$P1 $$P2 2>/dev/null" EXIT; \
	sleep 1; \
	W1=$$(sed 's/djvmworker listening on //' /tmp/j2_w1.addr); \
	W2=$$(sed 's/djvmworker listening on //' /tmp/j2_w2.addr); \
	go run ./cmd/djvmbench -table 2 -scale $(SCALE) -workers "$$W1,$$W2" | grep -v '^-- regenerated' > /tmp/j2_dist.txt; \
	go run ./cmd/djvmbench -table 2 -scale $(SCALE) | grep -v '^-- regenerated' > /tmp/j2_local.txt; \
	diff -u /tmp/j2_dist.txt /tmp/j2_local.txt && echo "dispatch identity: OK"
	rm -f /tmp/j2_djvmworker /tmp/j2_w1.addr /tmp/j2_w2.addr /tmp/j2_dist.txt /tmp/j2_local.txt

# test-serve is the open-loop traffic gauntlet: ServeMix golden determinism
# and arrival-stream property tests under the race detector, plus the
# Figure T assertion (closed-loop placement must strictly beat nop and
# one-shot on P99 on every arrival schedule; non-zero exit otherwise).
test-serve:
	go test -race -count=1 -run 'ServeMix|Arrivals|FigT|Controller' . ./internal/workload/ ./internal/scenario/ ./internal/experiments/ ./internal/sampling/
	go run ./cmd/djvmbench -figT -scale $(SCALE)

# test-overload is the serving-robustness gauntlet: the preset × protection
# determinism grid and the robust-off golden gate (Snapshot.Serve must be
# byte-identical to the pre-layer golden when the layer is off), the robust
# dispatcher and lock-failover suites — all under the race detector — then
# the Figure G assertion (the full protection stack must strictly beat
# no-protection and shed-only on SLO goodput AND P99 on every failure
# schedule; non-zero exit otherwise) and the `-recover -app serve`
# end-to-end smoke.
test-overload:
	go test -race -count=1 -run 'Overload|FigG|Robust|ServeMix|LockManager|LockReclaim|Protect|RecoverServe' . ./internal/workload/ ./internal/gos/ ./internal/experiments/ ./cmd/djvmrun/
	go run ./cmd/djvmbench -figG -scale $(SCALE)
	go run ./cmd/djvmrun -app serve -scenario crash+burst -recover -nodes 4 -threads 8 -rate off -tcm=false

# test-profile is the profile-store gauntlet: the codec round-trip,
# corruption and fuzz-corpus tests, the warm-start policy and session
# integration suite (fingerprint mismatch, Save-armed golden identity),
# and the Figure W assertion (warm start must strictly cut convergence
# epochs and profiling charge with quality inside the epsilons; non-zero
# exit otherwise) — race detector on the test half, then a djvmrun
# -profile-out -> -profile-in round trip through a scratch file.
test-profile:
	go test -race -count=1 -run 'Profile|WarmStart|FigW|Divergence|SeedMap|FixedCells' . ./internal/profile/ ./internal/session/ ./internal/tcm/ ./internal/experiments/ ./cmd/djvmrun/ ./cmd/tcmviz/
	go run ./cmd/djvmbench -figW -scale $(SCALE)
	go run ./cmd/djvmrun -app kv -scenario phased -policy rebalance -epoch 10ms -tcm=false -profile-out /tmp/j2_ci_kv.j2pf
	go run ./cmd/djvmrun -app kv -scenario phased -policy warmstart -epoch 10ms -tcm=false -profile-in /tmp/j2_ci_kv.j2pf
	go run ./cmd/tcmviz -profile /tmp/j2_ci_kv.j2pf
	rm -f /tmp/j2_ci_kv.j2pf

# test-tcmfull reruns the suite with the legacy full-rebuild TCM builder
# selected (the incremental builder's oracle); the equivalence property
# tests run the pair head to head under either tag.
test-tcmfull:
	go build -tags tcmfull ./...
	go test -tags tcmfull ./...

# bench runs the Go benchmarks (allocs/op is the regression metric; see
# EXPERIMENTS.md) and writes the machine-readable djvmbench report. The
# experiment regenerations fan out over the parallel runner (GOMAXPROCS
# workers); results are byte-identical to sequential, only wall-clock moves.
bench:
	go test -bench=. -benchmem -run '^$$' ./...
	go run ./cmd/djvmbench -benchjson $(BENCH) -scale $(SCALE)

# bench-seq is the single-threaded escape hatch: perf artifacts captured on
# the classic sequential path (one worker, GOMAXPROCS pinned per run), for
# baselines and for machines where fan-out would only add scheduler noise.
bench-seq:
	JESSICA2_PARALLEL=1 go test -bench=. -benchmem -run '^$$' ./...
	go run ./cmd/djvmbench -benchjson $(BENCH) -scale $(SCALE) -parallel 1

# demo-closedloop runs the closed-loop session demo: KVMix under the phased
# scenario, rebalance policy over 8 epochs, baseline vs closed-loop exec
# times printed head to head (see EXPERIMENTS.md, Figure CL).
demo-closedloop:
	go run ./cmd/djvmrun -app kv -scenario phased -policy rebalance -epochs 8 -tcm=false

# demo-serve runs the open-loop serving demo: ServeMix under the diurnal
# arrival schedule, rebalance policy at 125 ms epochs, goodput and
# P50/P95/P99 tail latency in the report (see EXPERIMENTS.md, Figure T).
demo-serve:
	go run ./cmd/djvmrun -app serve -nodes 4 -scenario diurnal -policy rebalance -epoch 125ms -tcm=false

clean:
	rm -f BENCH_current.json
