# BENCH is the djvmbench JSON artifact path; override per PR:
#   make bench BENCH=BENCH_2.json
BENCH ?= BENCH_current.json
# SCALE divides the paper datasets (1 = paper scale, 8 = CI-friendly).
SCALE ?= 8

.PHONY: verify build vet test bench clean

verify: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# bench runs the Go benchmarks (allocs/op is the regression metric; see
# EXPERIMENTS.md) and writes the machine-readable djvmbench report.
bench:
	go test -bench=. -benchmem -run '^$$' ./...
	go run ./cmd/djvmbench -benchjson $(BENCH) -scale $(SCALE)

clean:
	rm -f BENCH_current.json
