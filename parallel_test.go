package jessica2_test

import (
	"testing"

	"jessica2/internal/experiments"
	"jessica2/internal/runner"
)

// parallelTestScale keeps the identity runs CI-fast (1/16 datasets).
const parallelTestScale = experiments.Scale(16)

// TestParallelRegenerationIdentity is the parallel runner's golden gate:
// regenerating an experiment through a 4-worker pool must render the exact
// bytes the sequential path renders. Table II covers the classic
// Run-per-Spec generators; Figure S covers the scenario-engine sweep whose
// cells carry per-run seeded state (fresh scenarios, adaptive controllers).
// The suite also runs under `make test-race`, which proves the fan-out
// shares nothing: any cross-worker mutation of kernel, registry or
// scenario state would trip the race detector here.
func TestParallelRegenerationIdentity(t *testing.T) {
	par := runner.New(4)

	t.Run("Table2", func(t *testing.T) {
		seq := experiments.Table2(parallelTestScale, nil).Table().String()
		got := experiments.Table2(parallelTestScale, par).Table().String()
		if got != seq {
			t.Fatalf("parallel Table II diverged from sequential:\n--- sequential\n%s\n--- parallel\n%s", seq, got)
		}
	})

	t.Run("FigS", func(t *testing.T) {
		seq := experiments.FigS(parallelTestScale, nil).Table().String()
		got := experiments.FigS(parallelTestScale, par).Table().String()
		if got != seq {
			t.Fatalf("parallel Figure S diverged from sequential:\n--- sequential\n%s\n--- parallel\n%s", seq, got)
		}
	})
}

// TestParallelClosedLoopIdentity covers the session-driven generator: the
// FigCL sweep pipelines dependent waves (policy epochs calibrated from
// baseline execs) through the pool, and every row — execs, speedups, move
// and fault counters — must match the sequential fold exactly.
func TestParallelClosedLoopIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop sweep is the slowest generator")
	}
	seq := experiments.FigCL(parallelTestScale, nil).Table().String()
	got := experiments.FigCL(parallelTestScale, runner.New(4)).Table().String()
	if got != seq {
		t.Fatalf("parallel Figure CL diverged from sequential:\n--- sequential\n%s\n--- parallel\n%s", seq, got)
	}
}
