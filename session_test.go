package jessica2_test

import (
	"errors"
	"testing"

	"jessica2"
)

// TestSessionLifecycleErrors: the session API reports misuse as errors
// (the deprecated System wrapper keeps the panics; see
// TestSystemLifecyclePanics).
func TestSessionLifecycleErrors(t *testing.T) {
	sess := jessica2.NewSession(jessica2.DefaultConfig())
	if _, err := sess.Step(jessica2.Millisecond); !errors.Is(err, jessica2.ErrNoWorkload) {
		t.Fatalf("Step on empty session: %v", err)
	}
	if _, err := sess.Run(); !errors.Is(err, jessica2.ErrNoWorkload) {
		t.Fatalf("Run on empty session: %v", err)
	}

	if err := sess.Launch(quickSOR(), jessica2.Params{Threads: 4, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(0); err == nil {
		t.Fatal("non-positive epoch accepted")
	}
	if done, err := sess.Step(jessica2.Millisecond); err != nil || done {
		t.Fatalf("first step: done=%v err=%v", done, err)
	}

	// Configuration after the first step is a lifecycle error.
	if err := sess.Launch(quickSOR(), jessica2.Params{Threads: 2, Seed: 1}); !errors.Is(err, jessica2.ErrStarted) {
		t.Fatalf("Launch after start: %v", err)
	}
	if _, err := sess.AttachProfiling(jessica2.ProfileConfig{}); !errors.Is(err, jessica2.ErrStarted) {
		t.Fatalf("AttachProfiling after start: %v", err)
	}
	if err := sess.SetPolicy(jessica2.NopPolicy{}); !errors.Is(err, jessica2.ErrStarted) {
		t.Fatalf("SetPolicy after start: %v", err)
	}
	if _, err := sess.Report(); !errors.Is(err, jessica2.ErrNotFinished) {
		t.Fatalf("Report before completion: %v", err)
	}

	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	if !sess.Done() {
		t.Fatal("session not done after Run")
	}
	if _, err := sess.Run(); !errors.Is(err, jessica2.ErrFinished) {
		t.Fatalf("second Run: %v", err)
	}
	// Stepping a finished session is a benign no-op.
	if done, err := sess.Step(jessica2.Millisecond); err != nil || !done {
		t.Fatalf("step after finish: done=%v err=%v", done, err)
	}
	if rep, err := sess.Report(); err != nil || rep.ExecTime() <= 0 {
		t.Fatalf("report: %v", err)
	}
}

// TestSessionInvalidScenarioSticky: an invalid configuration surfaces as an
// error on first use instead of a panic.
func TestSessionInvalidScenarioSticky(t *testing.T) {
	scen, err := jessica2.ScenarioPreset("noisy", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := jessica2.DefaultConfig()
	cfg.Nodes = 1 // noisy's slowdown nodes don't exist in a 1-node cluster
	cfg.Scenario = scen
	sess := jessica2.NewSession(cfg)
	if err := sess.Launch(quickSOR(), jessica2.Params{Threads: 2, Seed: 1}); err == nil {
		t.Fatal("invalid scenario not surfaced by Launch")
	}
	if _, err := sess.Run(); err == nil {
		t.Fatal("invalid scenario not surfaced by Run")
	}
}

// TestConfigPartialOverridesMerge: regression for New() silently dropping
// partial Network/Costs overrides — historically cfg.Network was ignored
// unless BandwidthBytesPerSec was set and cfg.Costs unless CheckCost was.
func TestConfigPartialOverridesMerge(t *testing.T) {
	base := jessica2.DefaultConfig()
	run := func(cfg jessica2.Config) jessica2.Time {
		sys := jessica2.New(cfg)
		sys.Launch(quickSOR(), jessica2.Params{Threads: 4, Seed: 1})
		return sys.Run().ExecTime()
	}
	ref := run(base)

	// Latency-only network override (bandwidth field left zero).
	slowNet := base
	slowNet.Network.Latency = 20 * jessica2.Millisecond
	if got := run(slowNet); got <= ref {
		t.Fatalf("latency-only override ignored: ref=%v got=%v", ref, got)
	}

	// Fault-cost-only cost override (CheckCost field left zero).
	slowFaults := base
	slowFaults.Costs.FaultCPUCost = 3 * jessica2.Millisecond
	if got := run(slowFaults); got <= ref {
		t.Fatalf("fault-cost-only override ignored: ref=%v got=%v", ref, got)
	}
}

// TestSessionSnapshotProgress: snapshots expose live counters mid-run and
// do not disturb the run.
func TestSessionSnapshotProgress(t *testing.T) {
	sess := jessica2.NewSession(jessica2.DefaultConfig())
	if err := sess.Launch(quickSOR(), jessica2.Params{Threads: 8, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.AttachProfiling(jessica2.ProfileConfig{Rate: jessica2.FullRate}); err != nil {
		t.Fatal(err)
	}
	var last jessica2.Time
	steps := 0
	for {
		done, err := sess.Step(2 * jessica2.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		snap := sess.Snapshot()
		if snap.Now < last {
			t.Fatalf("snapshot time went backwards: %v -> %v", last, snap.Now)
		}
		last = snap.Now
		if snap.Threads != 8 || snap.Nodes != 8 {
			t.Fatalf("snapshot dims: %d threads %d nodes", snap.Threads, snap.Nodes)
		}
		steps++
		if done {
			if !snap.Done {
				t.Fatal("snapshot misses completion")
			}
			break
		}
	}
	if steps < 2 {
		t.Fatalf("run completed in %d steps; epoch too coarse for the test", steps)
	}
	snap := sess.Snapshot()
	if snap.TCM == nil || snap.TCM.Total() == 0 {
		t.Fatal("final snapshot TCM empty")
	}
	if snap.Kernel.Faults == 0 || snap.Network.TotalBytes() == 0 {
		t.Fatal("snapshot counters empty")
	}
}

// TestSessionRunUntil: absolute-time stepping processes epoch boundaries
// every Config.Epoch when a policy is installed, and completes cleanly when
// stepped past the end of the run.
func TestSessionRunUntil(t *testing.T) {
	cfg := jessica2.DefaultConfig()
	cfg.Epoch = 2 * jessica2.Millisecond
	sess := jessica2.NewSession(cfg)
	if err := sess.Launch(quickSOR(), jessica2.Params{Threads: 4, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.AttachProfiling(jessica2.ProfileConfig{Rate: jessica2.FullRate}); err != nil {
		t.Fatal(err)
	}
	if err := sess.SetPolicy(jessica2.NopPolicy{}); err != nil {
		t.Fatal(err)
	}
	done, err := sess.RunUntil(10 * jessica2.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		if sess.Now() != 10*jessica2.Millisecond {
			t.Fatalf("paused at %v, want 10ms", sess.Now())
		}
		if sess.Epochs() < 5 {
			t.Fatalf("processed %d epochs by 10ms with a 2ms period", sess.Epochs())
		}
		if done, err = sess.RunUntil(10 * jessica2.Second); err != nil || !done {
			t.Fatalf("RunUntil past the end: done=%v err=%v", done, err)
		}
	}
	if rep, err := sess.Report(); err != nil || rep.ExecTime() <= 0 {
		t.Fatalf("report after RunUntil: %v", err)
	}
}
