package jessica2_test

import (
	"fmt"
	"strings"
	"testing"

	"jessica2"
)

// goldenCase is one workload configuration for the determinism suite, kept
// small enough that every case runs in well under a second.
type goldenCase struct {
	name string
	make func() jessica2.Workload
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{"SOR", func() jessica2.Workload {
			s := jessica2.NewSOR()
			s.RowsN, s.Cols, s.Iters = 96, 96, 2
			return s
		}},
		{"BarnesHut", func() jessica2.Workload {
			b := jessica2.NewBarnesHut()
			b.NBodies, b.Rounds = 192, 2
			return b
		}},
		{"WaterSpatial", func() jessica2.Workload {
			w := jessica2.NewWaterSpatial()
			w.NMol, w.Rounds = 64, 2
			w.PairCost = 1 * jessica2.Microsecond
			return w
		}},
		{"Synthetic", func() jessica2.Workload {
			s := jessica2.NewSynthetic()
			s.Intervals, s.AccessesPerInterval = 3, 256
			return s
		}},
		{"LU", func() jessica2.Workload {
			l := jessica2.NewLUSmall()
			l.N = 64
			return l
		}},
		{"KVMix", func() jessica2.Workload {
			k := jessica2.NewKVMix()
			k.Keys, k.Rounds, k.TxnsPerRound = 256, 4, 16
			return k
		}},
	}
}

// goldenTrace runs one case to completion and renders every externally
// observable result into a single string: the report, the kernel and
// network counters, the correlation map, and the adaptive-free profiling
// state. Any nondeterminism anywhere in the stack shows up as a byte
// difference.
func goldenTrace(c goldenCase, scen *jessica2.Scenario, seed uint64) string {
	cfg := jessica2.DefaultConfig()
	cfg.Nodes = 4
	cfg.Scenario = scen
	sys := jessica2.New(cfg)
	sys.Launch(c.make(), jessica2.Params{Threads: 6, Seed: seed})
	prof := sys.AttachProfiling(jessica2.ProfileConfig{Rate: 4})
	rep := sys.Run()

	var sb strings.Builder
	sb.WriteString(rep.String())
	fmt.Fprintf(&sb, "kernel: %+v\n", rep.KernelStats())
	fmt.Fprintf(&sb, "net: %v", rep.NetworkStats())
	fmt.Fprintf(&sb, "oal=%d gos=%d\n", rep.OALBytes(), rep.GOSBytes())
	sb.WriteString(rep.TCM().String())
	fmt.Fprintf(&sb, "stackcpu=%v\n", prof.StackCPU())
	return sb.String()
}

// sessionTrace renders the same observables as goldenTrace, but drives the
// run through the epoch-stepped Session API with the passive NopPolicy
// installed: the closed-loop machinery must be invisible when the policy
// never acts.
func sessionTrace(t *testing.T, c goldenCase, scen *jessica2.Scenario, seed uint64) string {
	t.Helper()
	cfg := jessica2.DefaultConfig()
	cfg.Nodes = 4
	cfg.Scenario = scen
	sess := jessica2.NewSession(cfg)
	if err := sess.Launch(c.make(), jessica2.Params{Threads: 6, Seed: seed}); err != nil {
		t.Fatal(err)
	}
	prof, err := sess.AttachProfiling(jessica2.ProfileConfig{Rate: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SetPolicy(jessica2.NopPolicy{}); err != nil {
		t.Fatal(err)
	}
	for {
		done, err := sess.Step(10 * jessica2.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	rep, err := sess.Report()
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	sb.WriteString(rep.String())
	fmt.Fprintf(&sb, "kernel: %+v\n", rep.KernelStats())
	fmt.Fprintf(&sb, "net: %v", rep.NetworkStats())
	fmt.Fprintf(&sb, "oal=%d gos=%d\n", rep.OALBytes(), rep.GOSBytes())
	sb.WriteString(rep.TCM().String())
	fmt.Fprintf(&sb, "stackcpu=%v\n", prof.StackCPU())
	return sb.String()
}

// TestSessionNopGoldenIdentity: a Session stepped in epochs under NopPolicy
// must produce byte-identical reports to the classic one-shot System.Run on
// the same seed — with and without a perturbation scenario.
func TestSessionNopGoldenIdentity(t *testing.T) {
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if got, want := sessionTrace(t, c, nil, 42), goldenTrace(c, nil, 42); got != want {
				t.Fatalf("epoch-stepped NopPolicy session diverged from System.Run:\n--- session\n%s\n--- system\n%s", got, want)
			}
			if got, want := sessionTrace(t, c, stormScenario(t), 42), goldenTrace(c, stormScenario(t), 42); got != want {
				t.Fatalf("perturbed epoch-stepped NopPolicy session diverged from System.Run:\n--- session\n%s\n--- system\n%s", got, want)
			}
		})
	}
}

// stormScenario builds the all-kinds perturbation schedule; a fresh
// instance per run ensures no state (e.g. the jitter stream) leaks between
// repeats.
func stormScenario(t *testing.T) *jessica2.Scenario {
	t.Helper()
	sc, err := jessica2.ScenarioPreset("storm", 4, 1234)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestGoldenTraceDeterminism: every workload, run twice with the same seed,
// must produce byte-identical reports — and again under a full perturbation
// scenario (guarding the scenario engine's hook points), and the perturbed
// trace must differ from the unperturbed one (the hooks actually fire).
func TestGoldenTraceDeterminism(t *testing.T) {
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			base1 := goldenTrace(c, nil, 42)
			base2 := goldenTrace(c, nil, 42)
			if base1 != base2 {
				t.Fatalf("unperturbed same-seed runs diverged:\n--- run 1\n%s\n--- run 2\n%s", base1, base2)
			}

			pert1 := goldenTrace(c, stormScenario(t), 42)
			pert2 := goldenTrace(c, stormScenario(t), 42)
			if pert1 != pert2 {
				t.Fatalf("perturbed same-seed runs diverged:\n--- run 1\n%s\n--- run 2\n%s", pert1, pert2)
			}

			if base1 == pert1 {
				t.Error("storm scenario left the trace unchanged — hook points not reached")
			}
		})
	}
}

// TestGoldenTraceSeedSensitivity: different seeds must not collide (a
// trivially constant trace would pass the determinism check).
func TestGoldenTraceSeedSensitivity(t *testing.T) {
	for _, c := range goldenCases() {
		if c.name != "KVMix" { // fully seed-driven accesses
			continue
		}
		if goldenTrace(c, nil, 1) == goldenTrace(c, nil, 2) {
			t.Error("different seeds produced identical traces")
		}
		return
	}
	t.Fatal("KVMix golden case missing")
}
