package jessica2_test

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"jessica2"
	"jessica2/internal/runner"
)

// This file is the serving-robustness determinism gauntlet: every failure
// preset × protection level must render a byte-identical serving line on
// repeated runs (including a parallel re-run, so `-race` sweeps the whole
// grid), and the protection-off lines must stay byte-identical to the
// golden recorded before the robustness layer existed — proof the layer is
// invisible when off.

// overloadSpecs are the failure × burst-arrival preset combos under test.
var overloadSpecs = []string{"crash,burst", "flaky,burst"}

// overloadLevels are the protection levels swept per spec.
var overloadLevels = []string{"off", "shed", "full"}

// overloadRobust maps a gauntlet protection level onto a ServeMix config,
// mirroring the Figure G levels at the gauntlet's small scale.
func overloadRobust(level string) *jessica2.RobustConfig {
	switch level {
	case "off":
		return nil
	case "shed":
		return &jessica2.RobustConfig{Deadline: 20 * jessica2.Millisecond, Capacity: 16}
	case "full":
		rc := jessica2.DefaultRobustConfig()
		rc.Capacity = 16
		return rc
	}
	panic("unknown level " + level)
}

// overloadLine runs one (spec, level) cell — the exact configuration the
// robust-off golden was recorded under, with the level's protection
// installed — and renders its serving line.
func overloadLine(t *testing.T, spec, level string, seed uint64) string {
	t.Helper()
	sc, err := jessica2.ParseScenario(spec, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	// Scale the preset's arrival stream down so the whole grid stays fast:
	// same shape (bursts, crash schedule), an eighth of the rate over a
	// quarter of the horizon.
	sc.Arrivals.Rate /= 8
	sc.Arrivals.Horizon /= 4

	cfg := jessica2.DefaultConfig()
	cfg.Nodes = 4
	cfg.Scenario = sc
	cfg.Epoch = 25 * jessica2.Millisecond
	if level == "full" {
		// The full stack's breakers are fed by the failure detector.
		cfg.Failure = jessica2.DefaultFailureConfig()
	}
	sess := jessica2.NewSession(cfg)
	w := jessica2.NewServeMix()
	w.Robust = overloadRobust(level)
	if err := sess.Launch(w, jessica2.Params{Threads: 8, Seed: seed}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.AttachProfiling(jessica2.ProfileConfig{Rate: jessica2.FullRate}); err != nil {
		t.Fatal(err)
	}
	if err := sess.SetPolicy(jessica2.NewRebalancePolicy()); err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	snap := sess.Snapshot()
	if snap.Serve == nil {
		t.Fatalf("%s/%s: no serving snapshot", spec, level)
	}
	return fmt.Sprintf("%s seed %d: exec %v | %s", spec, seed, rep.ExecTime(), snap.Serve)
}

// TestOverloadGauntletDeterministic runs the full preset × protection grid
// twice — serially, then fanned out over a worker pool — and demands
// byte-identical serving lines. Under `go test -race` the parallel pass
// doubles as a data-race sweep of the robust dispatcher.
func TestOverloadGauntletDeterministic(t *testing.T) {
	const seed = 42
	type cell struct{ spec, level string }
	var cells []cell
	for _, spec := range overloadSpecs {
		for _, level := range overloadLevels {
			cells = append(cells, cell{spec, level})
		}
	}
	serial := make([]string, len(cells))
	for i, c := range cells {
		serial[i] = overloadLine(t, c.spec, c.level, seed)
	}
	parallel := make([]string, len(cells))
	runner.Go(runner.New(3), len(cells), func(i int) {
		parallel[i] = overloadLine(t, cells[i].spec, cells[i].level, seed)
	})
	for i, c := range cells {
		if serial[i] != parallel[i] {
			t.Errorf("%s/%s not deterministic:\n serial:   %s\n parallel: %s",
				c.spec, c.level, serial[i], parallel[i])
		}
		t.Logf("%-4s %s", c.level, serial[i])
	}
	// Protection must change results, or the gauntlet is vacuous: the
	// levels of one spec may not all render the same line.
	for _, spec := range overloadSpecs {
		lines := map[string]bool{}
		for i, c := range cells {
			if c.spec == spec {
				lines[serial[i]] = true
			}
		}
		if len(lines) < 2 {
			t.Errorf("%s: all protection levels rendered identical lines", spec)
		}
	}
}

// TestOverloadRobustOffGolden pins the robustness layer's off-state: with
// ServeMix.Robust nil, the serving line (report, kernel, arrivals, stats)
// must be byte-identical to the golden recorded before the layer existed.
// Any drift means the layer leaks into unprotected runs.
func TestOverloadRobustOffGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_serve_off.txt")
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, spec := range overloadSpecs {
		lines = append(lines, overloadLine(t, spec, "off", 42))
	}
	got := strings.Join(lines, "\n") + "\n"
	if got != string(want) {
		t.Fatalf("robust-off serving output drifted from golden:\n--- got\n%s--- want\n%s", got, want)
	}
}
